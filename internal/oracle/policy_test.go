package oracle

import (
	"testing"

	"rampage/internal/sim"
)

// policyNames are the replacement policies with reference models,
// clock included (it rides through the same plumbing).
var policyNames = []string{"clock", "fifo", "random", "awrp", "bandwidth"}

func rampagePolicyCfg(policy string, mhz, seed uint64) sim.RAMpageConfig {
	cfg := rampageCfg(false, mhz, seed)
	cfg.Policy = policy
	return cfg
}

func buildPolicyPair(t *testing.T, policy string, mhz, seed uint64) (*RAMpage, sim.Machine) {
	t.Helper()
	cfg := rampagePolicyCfg(policy, mhz, seed)
	orc, err := NewRAMpage(cfg)
	if err != nil {
		t.Fatalf("oracle rampage (%s): %v", policy, err)
	}
	subj, err := sim.NewRAMpage(cfg)
	if err != nil {
		t.Fatalf("sim rampage (%s): %v", policy, err)
	}
	return orc, subj
}

// TestLockstepPolicies replays every workload through the RAMpage
// machine under every replacement policy, reference by reference,
// requiring bit-identical reports between the production policy and
// its hand-written oracle mirror after every single reference.
func TestLockstepPolicies(t *testing.T) {
	n := refCount()
	for name, refs := range workloads(n) {
		for _, pol := range policyNames {
			t.Run(pol+"/"+name, func(t *testing.T) {
				orc, subj := buildPolicyPair(t, pol, 1000, 42)
				if div := Lockstep(orc, subj, refs); div != nil {
					t.Fatalf("divergence:\n%s", div)
				}
			})
		}
	}
}

// TestLockstepPoliciesBatched drives the subject's batched fast path
// against the per-reference oracle for every policy.
func TestLockstepPoliciesBatched(t *testing.T) {
	n := refCount()
	refs := wlSweep(1, n)
	for _, pol := range policyNames {
		t.Run(pol, func(t *testing.T) {
			orc, subj := buildPolicyPair(t, pol, 1000, 42)
			if div := LockstepBatch(orc, subj, refs, 512); div != nil {
				t.Fatalf("divergence (batch 512):\n%s", div)
			}
		})
	}
}

// TestSeededPolicyFaultsCaught plants each policy mirror's seeded
// fault — a small deterministic deviation in victim selection — and
// requires the differential engine to catch it. This is the per-policy
// divergence proof: the lockstep comparison is demonstrably not
// vacuous for any policy.
func TestSeededPolicyFaultsCaught(t *testing.T) {
	refs := wlSweep(1, 40_000)
	for _, pol := range policyNames {
		t.Run(pol, func(t *testing.T) {
			orc, subj := buildPolicyPair(t, pol, 1000, 42)
			orc.mm.pt.pol.setSkew(true)
			div := Lockstep(orc, subj, refs)
			if div == nil {
				t.Fatalf("seeded %s fault not detected", pol)
			}
			if div.Where != "report" {
				t.Errorf("divergence site = %q, want \"report\"", div.Where)
			}
			if div.Field == "" || div.OracleVal == div.SubjectVal {
				t.Errorf("report does not name a disagreeing field: field=%q oracle=%q subject=%q",
					div.Field, div.OracleVal, div.SubjectVal)
			}
		})
	}
}

// TestPolicyNamesReports pins the report naming: non-clock policies
// label their reports (and so CSV/golden rows) rampage+<policy> on
// both the subject and the oracle.
func TestPolicyNamesReports(t *testing.T) {
	for _, pol := range policyNames {
		orc, subj := buildPolicyPair(t, pol, 1000, 42)
		want := "rampage"
		if pol != "clock" {
			want += "+" + pol
		}
		if got := subj.Report().Name; got != want {
			t.Errorf("sim report name = %q, want %q", got, want)
		}
		if got := orc.Report().Name; got != want {
			t.Errorf("oracle report name = %q, want %q", got, want)
		}
	}
}
