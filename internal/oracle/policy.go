package oracle

import (
	"fmt"

	"rampage/internal/xrand"
)

// refPolicy is the reference model of a page-replacement policy,
// hand-written against the AoS refPTEntry table (the production
// policies in internal/policy rank over the packed flags column). Each
// mirror carries a test-only seeded-fault knob: setSkew plants a small
// deterministic deviation in victim selection — the subtlest class of
// replacement bug — that the differential engine must catch.
type refPolicy interface {
	name() string
	// selectVictim mirrors policy.ReplacementPolicy.SelectVictim,
	// including each policy's scan-address convention: the clock and
	// bandwidth hands report every entry examined; fifo, random and
	// awrp rank without a table walk and report only the victim entry.
	selectVictim(pt *refPageTable, scanAddrs []uint64) (uint64, []uint64, bool)
	touch(frame uint64)
	insert(frame uint64, refault bool)
	setSkew(bool)
	stateSummary() string
}

func refEligible(e *refPTEntry) bool { return e.valid && !e.pinned }

// newRefPolicy builds the reference mirror of the named policy
// (normalized or display spelling; empty means clock).
func newRefPolicy(name string, frames, seed uint64) (refPolicy, error) {
	switch name {
	case "", "clock":
		return &refClockPolicy{frames: frames}, nil
	case "fifo":
		return &refFIFOPolicy{frames: frames, stamps: make([]uint64, frames)}, nil
	case "random":
		p := &refRandomPolicy{frames: frames}
		p.rng.SetState(seed ^ 0xA17C9E4D5B36F208)
		return p, nil
	case "awrp":
		return &refAWRPPolicy{
			frames: frames,
			last:   make([]uint64, frames),
			freq:   make([]uint8, frames),
			wR:     4,
			dir:    1,
		}, nil
	case "bandwidth":
		return &refBandwidthPolicy{frames: frames, reuse: make([]uint8, frames)}, nil
	}
	return nil, fmt.Errorf("oracle: replacement policy %q has no reference model", name)
}

// refClockPolicy is the §4.5 clock: advance the hand clearing use bits
// until an unused eligible frame turns up. skew pre-advances the hand
// one position per selection — the historical off-by-one seeded fault.
type refClockPolicy struct {
	frames uint64
	hand   uint64
	skew   bool
}

func (p *refClockPolicy) name() string { return "clock" }

func (p *refClockPolicy) selectVictim(pt *refPageTable, scanAddrs []uint64) (uint64, []uint64, bool) {
	n := p.frames
	if p.skew {
		p.hand = (p.hand + 1) % n
	}
	for i := uint64(0); i < 2*n; i++ {
		f := p.hand
		p.hand = (p.hand + 1) % n
		e := &pt.entries[f]
		scanAddrs = append(scanAddrs, pt.entryAddr(f))
		if !refEligible(e) {
			continue
		}
		if e.used {
			e.used = false
			continue
		}
		return f, scanAddrs, true
	}
	return 0, scanAddrs, false
}

func (p *refClockPolicy) touch(uint64)        {}
func (p *refClockPolicy) insert(uint64, bool) {}
func (p *refClockPolicy) setSkew(s bool)      { p.skew = s }
func (p *refClockPolicy) stateSummary() string {
	return fmt.Sprintf("clock hand %d", p.hand)
}

// refFIFOPolicy evicts the eligible frame with the oldest insertion
// stamp (lowest index on ties). skew inverts the ranking to LIFO.
type refFIFOPolicy struct {
	frames uint64
	next   uint64
	stamps []uint64
	skew   bool
}

func (p *refFIFOPolicy) name() string { return "fifo" }

func (p *refFIFOPolicy) selectVictim(pt *refPageTable, scanAddrs []uint64) (uint64, []uint64, bool) {
	var best uint64
	found := false
	for f := uint64(0); f < p.frames; f++ {
		if !refEligible(&pt.entries[f]) {
			continue
		}
		older := p.stamps[f] < p.stamps[best]
		if p.skew {
			older = p.stamps[f] > p.stamps[best]
		}
		if !found || older {
			found, best = true, f
		}
	}
	if !found {
		return 0, scanAddrs, false
	}
	return best, append(scanAddrs, pt.entryAddr(best)), true
}

func (p *refFIFOPolicy) touch(uint64) {}

func (p *refFIFOPolicy) insert(frame uint64, _ bool) {
	p.next++
	p.stamps[frame] = p.next
}

func (p *refFIFOPolicy) setSkew(s bool) { p.skew = s }
func (p *refFIFOPolicy) stateSummary() string {
	return fmt.Sprintf("fifo stamp %d", p.next)
}

// refRandomPolicy draws a uniform eligible frame from the same salted
// SplitMix64 stream the production policy uses: one value per
// successful selection, none on failure. skew burns one extra draw
// before each selection, skewing the stream.
type refRandomPolicy struct {
	frames uint64
	rng    xrand.RNG
	skew   bool
}

func (p *refRandomPolicy) name() string { return "random" }

func (p *refRandomPolicy) selectVictim(pt *refPageTable, scanAddrs []uint64) (uint64, []uint64, bool) {
	var count uint64
	for f := uint64(0); f < p.frames; f++ {
		if refEligible(&pt.entries[f]) {
			count++
		}
	}
	if count == 0 {
		return 0, scanAddrs, false
	}
	if p.skew {
		p.rng.Next()
	}
	k := p.rng.Uintn(count)
	for f := uint64(0); f < p.frames; f++ {
		if !refEligible(&pt.entries[f]) {
			continue
		}
		if k == 0 {
			return f, append(scanAddrs, pt.entryAddr(f)), true
		}
		k--
	}
	panic("oracle: random candidate count drifted during selection")
}

func (p *refRandomPolicy) touch(uint64)        {}
func (p *refRandomPolicy) insert(uint64, bool) {}
func (p *refRandomPolicy) setSkew(s bool)      { p.skew = s }
func (p *refRandomPolicy) stateSummary() string {
	return fmt.Sprintf("random rng %#x", p.rng.State())
}

// refAWRPPolicy mirrors the adaptive weight-ranking policy: score =
// (wR+1)*age / (1 + freq*(8-wR)), maximum-score victim, hill-climbing
// wR on per-window refault rate. skew inverts the ranking (evicts the
// minimum-score frame).
type refAWRPPolicy struct {
	frames uint64
	tick   uint64
	last   []uint64
	freq   []uint8

	wR  uint32
	dir int32

	winIns, winRef   uint64
	prevIns, prevRef uint64

	skew bool
}

func (p *refAWRPPolicy) name() string { return "awrp" }

func (p *refAWRPPolicy) score(f uint64) uint64 {
	age := p.tick - p.last[f]
	return (uint64(p.wR) + 1) * age / (1 + uint64(p.freq[f])*uint64(8-p.wR))
}

func (p *refAWRPPolicy) selectVictim(pt *refPageTable, scanAddrs []uint64) (uint64, []uint64, bool) {
	var best, bestScore uint64
	found := false
	for f := uint64(0); f < p.frames; f++ {
		if !refEligible(&pt.entries[f]) {
			continue
		}
		s := p.score(f)
		better := s > bestScore
		if p.skew {
			better = s < bestScore
		}
		if !found || better {
			found, best, bestScore = true, f, s
		}
	}
	if !found {
		return 0, scanAddrs, false
	}
	return best, append(scanAddrs, pt.entryAddr(best)), true
}

func (p *refAWRPPolicy) touch(frame uint64) {
	p.tick++
	p.last[frame] = p.tick
	if p.freq[frame] < 255 {
		p.freq[frame]++
	}
}

func (p *refAWRPPolicy) insert(frame uint64, refault bool) {
	p.tick++
	p.last[frame] = p.tick
	p.freq[frame] = 1
	p.winIns++
	if refault {
		p.winRef++
	}
	if p.winIns >= 256 {
		if p.prevIns > 0 && p.winRef*p.prevIns > p.prevRef*p.winIns {
			p.dir = -p.dir
		}
		next := int64(p.wR) + int64(p.dir)
		if next < 0 || next > 8 {
			p.dir = -p.dir
			next = int64(p.wR) + int64(p.dir)
		}
		p.wR = uint32(next)
		p.prevIns, p.prevRef = p.winIns, p.winRef
		p.winIns, p.winRef = 0, 0
	}
}

func (p *refAWRPPolicy) setSkew(s bool) { p.skew = s }
func (p *refAWRPPolicy) stateSummary() string {
	return fmt.Sprintf("awrp tick %d wR %d", p.tick, p.wR)
}

// refBandwidthPolicy mirrors the Banshee-style policy: a hand sweep
// that evicts the first zero-credit eligible frame, decaying survivors,
// falling back to the minimum post-decay credit. skew pre-advances the
// hand like the clock fault.
type refBandwidthPolicy struct {
	frames uint64
	hand   uint64
	reuse  []uint8
	skew   bool
}

func (p *refBandwidthPolicy) name() string { return "bandwidth" }

func (p *refBandwidthPolicy) selectVictim(pt *refPageTable, scanAddrs []uint64) (uint64, []uint64, bool) {
	n := p.frames
	if p.skew {
		p.hand = (p.hand + 1) % n
	}
	var best uint64
	var bestCredit uint8
	found := false
	for i := uint64(0); i < 2*n; i++ {
		f := p.hand
		p.hand = (p.hand + 1) % n
		scanAddrs = append(scanAddrs, pt.entryAddr(f))
		if !refEligible(&pt.entries[f]) {
			continue
		}
		if p.reuse[f] == 0 {
			return f, scanAddrs, true
		}
		p.reuse[f]--
		if !found || p.reuse[f] < bestCredit {
			found, best, bestCredit = true, f, p.reuse[f]
		}
	}
	if !found {
		return 0, scanAddrs, false
	}
	return best, scanAddrs, true
}

func (p *refBandwidthPolicy) touch(frame uint64) {
	if p.reuse[frame] < 15 {
		p.reuse[frame]++
	}
}

func (p *refBandwidthPolicy) insert(frame uint64, refault bool) {
	if refault {
		p.reuse[frame] = 2
	} else {
		p.reuse[frame] = 0
	}
}

func (p *refBandwidthPolicy) setSkew(s bool) { p.skew = s }
func (p *refBandwidthPolicy) stateSummary() string {
	return fmt.Sprintf("bandwidth hand %d", p.hand)
}
