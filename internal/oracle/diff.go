package oracle

import (
	"context"
	"fmt"
	"reflect"
	"strings"

	"rampage/internal/mem"
	"rampage/internal/sim"
	"rampage/internal/stats"
	"rampage/internal/trace"
)

// Divergence describes the first point at which a subject machine's
// behaviour departed from the oracle's. A nil *Divergence means the two
// machines agreed reference for reference.
type Divergence struct {
	// Index is the position in the replayed trace of the reference at
	// (or after) which the machines disagreed; -1 when the divergence
	// was only visible in the final report.
	Index int
	// Ref is the reference at Index (zero when Index is -1).
	Ref mem.Ref
	// Where names the disagreeing channel: "error", "blockUntil",
	// "consumed", or "report".
	Where string
	// Field is the first differing stats.Report field when Where is
	// "report".
	Field string
	// OracleVal and SubjectVal are the disagreeing values, formatted.
	OracleVal  string
	SubjectVal string
	// OracleReport and SubjectReport are snapshots taken at the
	// divergence point.
	OracleReport  stats.Report
	SubjectReport stats.Report
	// Context is the oracle machine's state summary at the divergence
	// point, when the machine provides one.
	Context string
}

// String renders the pointed divergence report.
func (d *Divergence) String() string {
	if d == nil {
		return "<no divergence>"
	}
	var b strings.Builder
	if d.Index >= 0 {
		fmt.Fprintf(&b, "divergence at reference %d (%s): %s", d.Index, d.Ref, d.Where)
	} else {
		fmt.Fprintf(&b, "divergence in final state: %s", d.Where)
	}
	if d.Field != "" {
		fmt.Fprintf(&b, " field %s", d.Field)
	}
	fmt.Fprintf(&b, "\n  oracle:  %s\n  subject: %s", d.OracleVal, d.SubjectVal)
	if d.Context != "" {
		fmt.Fprintf(&b, "\n  oracle state: %s", d.Context)
	}
	fmt.Fprintf(&b, "\n  oracle cycles %d, subject cycles %d",
		d.OracleReport.Cycles, d.SubjectReport.Cycles)
	return b.String()
}

// stateSummarizer is implemented by the oracle machines; divergence
// reports include the summary when available.
type stateSummarizer interface{ StateSummary() string }

// summarize extracts a state summary from a machine if it offers one.
func summarize(m sim.Machine) string {
	if s, ok := m.(stateSummarizer); ok {
		return s.StateSummary()
	}
	return ""
}

// compareReports returns the name and values of the first differing
// field, or "" when the reports are identical. The fast path is one
// comparable-struct equality; reflection runs only on mismatch.
func compareReports(o, s *stats.Report) (field, oval, sval string) {
	if *o == *s {
		return "", "", ""
	}
	vo := reflect.ValueOf(*o)
	vs := reflect.ValueOf(*s)
	t := vo.Type()
	for i := 0; i < t.NumField(); i++ {
		fo, fs := vo.Field(i), vs.Field(i)
		if fo.Interface() != fs.Interface() {
			return t.Field(i).Name, fmt.Sprint(fo.Interface()), fmt.Sprint(fs.Interface())
		}
	}
	return "report", fmt.Sprint(*o), fmt.Sprint(*s) // unreachable: *o != *s
}

// maxRetries bounds the block-retry loop on a single reference. A
// switch-on-miss fault retries once after its page arrives; anything
// deeper indicates a livelock in one of the machines.
const maxRetries = 8

// Lockstep replays refs through the oracle and the subject one
// reference at a time, comparing errors, blocking times and the full
// report after every reference. It returns the first divergence, or nil
// when the machines agree over the whole trace.
func Lockstep(oracle, subject sim.Machine, refs []mem.Ref) *Divergence {
	div := func(i int, where, oval, sval string) *Divergence {
		return &Divergence{
			Index: i, Ref: refs[i], Where: where,
			OracleVal: oval, SubjectVal: sval,
			OracleReport:  *oracle.Report(),
			SubjectReport: *subject.Report(),
			Context:       summarize(oracle),
		}
	}
	for i, ref := range refs {
		for retry := 0; ; retry++ {
			if retry > maxRetries {
				return div(i, "retry-loop", "reference never completed", "reference never completed")
			}
			ob, oerr := oracle.Exec(ref)
			sb, serr := subject.Exec(ref)
			if (oerr != nil) != (serr != nil) {
				return div(i, "error", fmt.Sprint(oerr), fmt.Sprint(serr))
			}
			if oerr != nil {
				return nil // both rejected the reference: agreement
			}
			if ob != sb {
				return div(i, "blockUntil", fmt.Sprint(ob), fmt.Sprint(sb))
			}
			if f, ov, sv := compareReports(oracle.Report(), subject.Report()); f != "" {
				d := div(i, "report", ov, sv)
				d.Field = f
				return d
			}
			if ob == 0 {
				break
			}
			// Both blocked until the same cycle: wait and retry the same
			// reference, exactly as the scheduler would with one process.
			oracle.AdvanceTo(ob)
			subject.AdvanceTo(sb)
		}
	}
	if f, ov, sv := compareReports(oracle.Report(), subject.Report()); f != "" {
		return &Divergence{
			Index: -1, Where: "report", Field: f,
			OracleVal: ov, SubjectVal: sv,
			OracleReport:  *oracle.Report(),
			SubjectReport: *subject.Report(),
			Context:       summarize(oracle),
		}
	}
	return nil
}

// LockstepBatch replays refs through the subject's ExecBatch path in
// windows of batchSize references, driving the oracle per-reference
// over each consumed prefix, and compares the reports at every window
// boundary. It exercises the batched fast paths the per-reference
// Lockstep never reaches.
func LockstepBatch(oracle, subject sim.Machine, refs []mem.Ref, batchSize int) *Divergence {
	if batchSize < 1 {
		batchSize = 64
	}
	div := func(i int, where, oval, sval string) *Divergence {
		d := &Divergence{
			Index: i, Where: where,
			OracleVal: oval, SubjectVal: sval,
			OracleReport:  *oracle.Report(),
			SubjectReport: *subject.Report(),
			Context:       summarize(oracle),
		}
		if i >= 0 && i < len(refs) {
			d.Ref = refs[i]
		}
		return d
	}
	pos := 0
	retries := 0
	for pos < len(refs) {
		end := pos + batchSize
		if end > len(refs) {
			end = len(refs)
		}
		consumed, sb, serr := subject.ExecBatch(refs[pos:end])
		// The oracle executes the consumed prefix per reference; each of
		// those completed in the subject, so the oracle must complete
		// them too.
		for j := 0; j < consumed; j++ {
			ob, oerr := oracle.Exec(refs[pos+j])
			if oerr != nil {
				return div(pos+j, "error", fmt.Sprint(oerr), "<executed>")
			}
			if ob != 0 {
				return div(pos+j, "blockUntil", fmt.Sprint(ob), "0 (executed in batch)")
			}
		}
		pos += consumed
		if consumed > 0 {
			retries = 0
		}
		if serr != nil {
			// The subject rejected refs[pos]; the oracle must reject it
			// too.
			_, oerr := oracle.Exec(refs[pos])
			if oerr == nil {
				return div(pos, "error", "<executed>", fmt.Sprint(serr))
			}
			return nil // both rejected the reference: agreement
		}
		if sb != 0 {
			// The subject blocked at refs[pos]: the oracle must block at
			// the same cycle. Then both wait and the window retries.
			ob, oerr := oracle.Exec(refs[pos])
			if oerr != nil {
				return div(pos, "error", fmt.Sprint(oerr), "<blocked>")
			}
			if ob != sb {
				return div(pos, "blockUntil", fmt.Sprint(ob), fmt.Sprint(sb))
			}
			oracle.AdvanceTo(ob)
			subject.AdvanceTo(sb)
			retries++
			if retries > maxRetries {
				return div(pos, "retry-loop", "reference never completed", "reference never completed")
			}
		}
		if f, ov, sv := compareReports(oracle.Report(), subject.Report()); f != "" {
			d := div(pos, "report", ov, sv)
			d.Field = f
			return d
		}
	}
	if f, ov, sv := compareReports(oracle.Report(), subject.Report()); f != "" {
		d := div(-1, "report", ov, sv)
		d.Field = f
		return d
	}
	return nil
}

// DiffRun drives the oracle and the subject through two identically
// configured schedulers over the same multiprogrammed workload —
// context-switch traces, quantum boundaries, switch-on-miss blocking
// and all — and compares the final reports. refs is replayed per
// process (each stream re-read from the slice), so both machines see
// exactly the same interleaving. The subject runs the batched scheduler
// path when batched is true, the per-reference path otherwise; the
// oracle always runs per-reference.
func DiffRun(oracle, subject sim.Machine, streams [][]mem.Ref, cfg sim.SchedulerConfig, batched bool) (*Divergence, error) {
	run := func(m sim.Machine, disableBatching bool) (*stats.Report, error) {
		readers := make([]trace.Reader, len(streams))
		for i, s := range streams {
			readers[i] = trace.NewSliceReader(s)
		}
		c := cfg
		c.DisableBatching = disableBatching
		sched, err := sim.NewScheduler(m, readers, c)
		if err != nil {
			return nil, err
		}
		return sched.Run(context.Background())
	}
	orep, oerr := run(oracle, true)
	srep, serr := run(subject, !batched)
	if (oerr != nil) != (serr != nil) {
		return &Divergence{
			Index: -1, Where: "error",
			OracleVal: fmt.Sprint(oerr), SubjectVal: fmt.Sprint(serr),
			Context: summarize(oracle),
		}, nil
	}
	if oerr != nil {
		return nil, fmt.Errorf("oracle: both runs failed: %w", oerr)
	}
	if f, ov, sv := compareReports(orep, srep); f != "" {
		return &Divergence{
			Index: -1, Where: "report", Field: f,
			OracleVal: ov, SubjectVal: sv,
			OracleReport:  *orep,
			SubjectReport: *srep,
			Context:       summarize(oracle),
		}, nil
	}
	return nil, nil
}
