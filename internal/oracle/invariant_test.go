package oracle

import (
	"context"
	"errors"
	"strings"
	"testing"

	"rampage/internal/mem"
	"rampage/internal/metrics"
	"rampage/internal/sim"
	"rampage/internal/stats"
	"rampage/internal/trace"
)

// runVerified runs a multiprogrammed workload through m with an
// invariant checker attached exactly as the harness wires it.
func runVerified(t *testing.T, m sim.Machine, streams [][]mem.Ref) error {
	t.Helper()
	checker := NewInvariantChecker(m, nil)
	m.SetObserver(checker)
	readers := make([]trace.Reader, len(streams))
	for i, s := range streams {
		readers[i] = trace.NewSliceReader(s)
	}
	sched, err := sim.NewScheduler(m, readers, sim.SchedulerConfig{
		Quantum:  2_000,
		Seed:     42,
		Observer: checker,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	return checker.Check()
}

// TestInvariantCheckerCleanRuns attaches the checker to each production
// machine over a replacement-heavy workload and expects no violations:
// the machines really do maintain their invariants, and the checker
// really does run its deep checks (verified by the probe counters).
func TestInvariantCheckerCleanRuns(t *testing.T) {
	streams := [][]mem.Ref{wlSweep(0, 30_000), wlLoop(0, 30_000)}
	for _, sys := range []struct {
		name  string
		build func() (sim.Machine, error)
	}{
		{"baseline-dm", func() (sim.Machine, error) { return sim.NewBaseline(baselineCfg(1, 1000, 42)) }},
		{"l2-2way", func() (sim.Machine, error) { return sim.NewBaseline(baselineCfg(2, 1000, 42)) }},
		{"rampage", func() (sim.Machine, error) { return sim.NewRAMpage(rampageCfg(false, 1000, 42)) }},
		{"rampage-cs", func() (sim.Machine, error) { return sim.NewRAMpage(rampageCfg(true, 1000, 42)) }},
	} {
		t.Run(sys.name, func(t *testing.T) {
			m, err := sys.build()
			if err != nil {
				t.Fatal(err)
			}
			if err := runVerified(t, m, streams); err != nil {
				t.Errorf("invariant violation on a clean run: %v", err)
			}
		})
	}
}

// TestCheckInvariantsDirect pins that the deep checks pass on freshly
// built and exercised machines when called directly (the entry point
// the checker uses).
func TestCheckInvariantsDirect(t *testing.T) {
	b, err := sim.NewBaseline(baselineCfg(1, 1000, 42))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Errorf("fresh baseline: %v", err)
	}
	for _, ref := range wlSweep(1, 5_000) {
		if _, err := b.Exec(ref); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.CheckInvariants(); err != nil {
		t.Errorf("exercised baseline: %v", err)
	}
	r, err := sim.NewRAMpage(rampageCfg(false, 1000, 42))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Errorf("fresh rampage: %v", err)
	}
	for _, ref := range wlSweep(1, 5_000) {
		if _, err := r.Exec(ref); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.CheckInvariants(); err != nil {
		t.Errorf("exercised rampage: %v", err)
	}
}

// stubMachine is a minimal sim.Machine whose CheckInvariants result the
// tests control, for exercising the checker's failure paths without
// corrupting a real machine.
type stubMachine struct {
	rep     stats.Report
	deepErr error
}

func (s *stubMachine) Exec(mem.Ref) (mem.Cycles, error)               { return 0, nil }
func (s *stubMachine) ExecBatch(r []mem.Ref) (int, mem.Cycles, error) { return len(r), 0, nil }
func (s *stubMachine) ExecTrace([]mem.Ref, sim.RefClass) error        { return nil }
func (s *stubMachine) Now() mem.Cycles                                { return s.rep.Cycles }
func (s *stubMachine) AdvanceTo(mem.Cycles)                           {}
func (s *stubMachine) Report() *stats.Report                          { return &s.rep }
func (s *stubMachine) SetObserver(metrics.Observer)                   {}
func (s *stubMachine) CheckInvariants() error                         { return s.deepErr }

func TestInvariantCheckerTickMonotonicity(t *testing.T) {
	c := NewInvariantChecker(&stubMachine{}, nil)
	c.Tick(10)
	c.Tick(10) // equal is fine: the machine may not advance between ticks
	c.Tick(5)  // backwards is not
	err := c.Check()
	if err == nil || !strings.Contains(err.Error(), "backwards") {
		t.Errorf("time regression not reported: %v", err)
	}
}

func TestInvariantCheckerReportsDeepError(t *testing.T) {
	boom := errors.New("clock hand out of range")
	m := &stubMachine{deepErr: boom}
	c := NewInvariantChecker(m, nil)
	if err := c.Check(); !errors.Is(err, boom) {
		t.Errorf("deep check error not surfaced: %v", err)
	}
	// Online detection: the violation is recorded at a deep-check
	// boundary, not just at the end.
	c2 := NewInvariantChecker(m, nil)
	for i := 0; i < deepCheckInterval; i++ {
		c2.Tick(uint64(i))
	}
	if c2.err == nil {
		t.Error("violation not detected online at the deep-check boundary")
	}
}

func TestInvariantCheckerDRAMAccounting(t *testing.T) {
	m := &stubMachine{}
	m.rep.DRAMTransfers = 2
	m.rep.DRAMBytes = 8192
	c := NewInvariantChecker(m, nil)
	c.Observe(metrics.EvDRAMTransfer, 4096)
	c.Observe(metrics.EvDRAMTransfer, 4096)
	if err := c.Check(); err != nil {
		t.Errorf("matching DRAM accounting rejected: %v", err)
	}
	// A transfer the observer never saw means the machine bypassed its
	// probe point.
	m2 := &stubMachine{}
	m2.rep.DRAMTransfers = 2
	m2.rep.DRAMBytes = 8192
	c2 := NewInvariantChecker(m2, nil)
	c2.Observe(metrics.EvDRAMTransfer, 4096)
	err := c2.Check()
	if err == nil || !strings.Contains(err.Error(), "DRAM") {
		t.Errorf("missing transfer observation not reported: %v", err)
	}
}

// TestInvariantCheckerForwards verifies the checker is transparent to a
// wrapped observer.
func TestInvariantCheckerForwards(t *testing.T) {
	col := metrics.NewCollector(0)
	c := NewInvariantChecker(&stubMachine{}, col)
	c.Count(metrics.EvTLBHit, 3)
	c.Observe(metrics.EvDRAMTransfer, 4096)
	c.Tick(7)
	if got := col.Counts()[metrics.EvTLBHit]; got != 3 {
		t.Errorf("forwarded count = %d, want 3", got)
	}
	if h := col.Hist(metrics.EvDRAMTransfer); h.Count != 1 || h.Sum != 4096 {
		t.Errorf("forwarded observation = %+v, want one 4096-byte transfer", h)
	}
}
