package oracle

import (
	"strings"
	"testing"

	"rampage/internal/sim"
	"rampage/internal/stats"
)

// TestSeededFaultCaught plants a deliberate off-by-one in the oracle's
// clock hand (the test-only skewHand knob advances the hand one extra
// position before each scan) and checks that the differential engine
// catches it with a pointed report: the index and reference of the
// first divergent access, the disagreeing report field, and both
// machines' state summaries. This is the end-to-end proof that the
// harness can actually see a replacement-policy bug — the subtlest
// class of error the oracle exists to catch.
func TestSeededFaultCaught(t *testing.T) {
	cfg := rampageCfg(false, 1000, 42)
	orc, err := NewRAMpage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orc.mm.pt.pol.setSkew(true)
	subj, err := sim.NewRAMpage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The sweep workload overflows the SRAM, so victim selection runs
	// constantly; the skewed hand must pick a different victim quickly.
	refs := wlSweep(1, 40_000)
	div := Lockstep(orc, subj, refs)
	if div == nil {
		t.Fatal("seeded clock-hand fault not detected")
	}
	if div.Index < 0 || div.Index >= len(refs) {
		t.Errorf("divergence index %d does not point at a reference", div.Index)
	}
	if div.Where != "report" {
		t.Errorf("divergence site = %q, want \"report\" (a skewed victim changes counters first)", div.Where)
	}
	if div.Field == "" || div.OracleVal == div.SubjectVal {
		t.Errorf("report does not name a disagreeing field: field=%q oracle=%q subject=%q",
			div.Field, div.OracleVal, div.SubjectVal)
	}
	s := div.String()
	for _, want := range []string{"divergence at reference", "field", "oracle state"} {
		if !strings.Contains(s, want) {
			t.Errorf("divergence report missing %q:\n%s", want, s)
		}
	}
}

// TestSeededFaultCaughtBatched runs the same seeded fault through the
// batched comparison path.
func TestSeededFaultCaughtBatched(t *testing.T) {
	cfg := rampageCfg(false, 1000, 42)
	orc, err := NewRAMpage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orc.mm.pt.pol.setSkew(true)
	subj, err := sim.NewRAMpage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if div := LockstepBatch(orc, subj, wlSweep(1, 40_000), 512); div == nil {
		t.Fatal("seeded clock-hand fault not detected on the batched path")
	}
}

// TestMismatchedConfigDiverges is a sanity check from the other side:
// two machines that genuinely simulate different systems (different
// seeds, so different random placement) must be reported as divergent,
// proving the comparison isn't vacuously passing.
func TestMismatchedConfigDiverges(t *testing.T) {
	orc, err := NewBaseline(baselineCfg(2, 1000, 42))
	if err != nil {
		t.Fatal(err)
	}
	subj, err := sim.NewBaseline(baselineCfg(2, 1000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if div := Lockstep(orc, subj, wlSweep(1, 40_000)); div == nil {
		t.Fatal("machines with different seeds compared equal")
	}
}

// TestCompareReportsNamesField pins the field-attribution logic the
// divergence report depends on.
func TestCompareReportsNamesField(t *testing.T) {
	var a, b stats.Report
	a.TLBMisses = 3
	b.TLBMisses = 5
	field, oval, sval := compareReports(&a, &b)
	if field != "TLBMisses" || oval != "3" || sval != "5" {
		t.Errorf("compareReports = (%q, %q, %q), want (TLBMisses, 3, 5)", field, oval, sval)
	}
	if f, _, _ := compareReports(&a, &a); f != "" {
		t.Errorf("identical reports compared unequal on field %q", f)
	}
}

// TestDivergenceStringFinal covers the end-of-run divergence shape
// (Index == -1).
func TestDivergenceStringFinal(t *testing.T) {
	d := &Divergence{Index: -1, Where: "report", Field: "Cycles", OracleVal: "1", SubjectVal: "2"}
	s := d.String()
	if !strings.Contains(s, "final") {
		t.Errorf("final divergence not labeled as such:\n%s", s)
	}
}
