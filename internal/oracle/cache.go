package oracle

import (
	"fmt"

	"rampage/internal/mem"
	"rampage/internal/xrand"
)

// refCache is the reference N-way set-associative write-back,
// write-allocate tag store: a plain scan over plain structs, one
// Access entry point, no split hit path. Victim order within a set is
// fixed by the spec: first invalid way, else way 0 when direct-mapped,
// else a uniform random way (RandomRepl) or the least-recently-used
// way. The replacement RNG is the seeded SplitMix64 stream the design
// pins (seed ^ 0xCAC4E), consumed only when a full set is replaced
// under random replacement.
type refCache struct {
	lines      []refLine // sets*assoc, set-major
	assoc      int
	blockBytes uint64
	setMask    uint64
	setShift   uint
	blockShift uint
	random     bool // random replacement (else LRU)
	rng        *xrand.RNG
	tick       uint64 // LRU timestamp, one increment per access
}

type refLine struct {
	valid bool
	dirty bool
	tag   uint64
	used  uint64
}

type refCacheResult struct {
	hit           bool
	evicted       bool
	evictedDirty  bool
	evictedAddr   mem.PAddr
	writebackAddr mem.PAddr
}

func newRefCache(sizeBytes, blockBytes uint64, assoc int, random bool, seed uint64) (*refCache, error) {
	if blockBytes == 0 || !mem.IsPow2(blockBytes) {
		return nil, fmt.Errorf("oracle: cache block size %d is not a power of two", blockBytes)
	}
	if sizeBytes == 0 || !mem.IsPow2(sizeBytes) {
		return nil, fmt.Errorf("oracle: cache size %d is not a power of two", sizeBytes)
	}
	if assoc < 1 {
		return nil, fmt.Errorf("oracle: cache associativity %d < 1", assoc)
	}
	blocks := sizeBytes / blockBytes
	if blocks == 0 || uint64(assoc) > blocks {
		return nil, fmt.Errorf("oracle: %d ways exceed %d blocks", assoc, blocks)
	}
	sets := blocks / uint64(assoc)
	if !mem.IsPow2(sets) {
		return nil, fmt.Errorf("oracle: cache set count %d is not a power of two", sets)
	}
	return &refCache{
		lines:      make([]refLine, sets*uint64(assoc)),
		assoc:      assoc,
		blockBytes: blockBytes,
		setMask:    sets - 1,
		setShift:   mem.Log2(sets),
		blockShift: mem.Log2(blockBytes),
		random:     random,
		rng:        xrand.New(seed ^ 0xCAC4E),
	}, nil
}

func (c *refCache) index(addr mem.PAddr) (set, tag uint64) {
	block := uint64(addr) >> c.blockShift
	return block & c.setMask, block >> c.setShift
}

func (c *refCache) set(setIdx uint64) []refLine {
	base := setIdx * uint64(c.assoc)
	return c.lines[base : base+uint64(c.assoc)]
}

func (c *refCache) rebuild(set, tag uint64) mem.PAddr {
	return mem.PAddr((tag<<c.setShift | set) << c.blockShift)
}

// access looks up addr, allocating on a miss (write-allocate) and
// marking dirty on a write, reporting any displacement.
func (c *refCache) access(addr mem.PAddr, write bool) refCacheResult {
	set, tag := c.index(addr)
	ways := c.set(set)
	c.tick++
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].used = c.tick
			if write {
				ways[i].dirty = true
			}
			return refCacheResult{hit: true}
		}
	}
	victim := c.pickVictim(ways)
	var res refCacheResult
	if ways[victim].valid {
		res.evicted = true
		res.evictedAddr = c.rebuild(set, ways[victim].tag)
		if ways[victim].dirty {
			res.evictedDirty = true
			res.writebackAddr = res.evictedAddr
		}
	}
	ways[victim] = refLine{valid: true, dirty: write, tag: tag, used: c.tick}
	return res
}

func (c *refCache) pickVictim(ways []refLine) int {
	for i := range ways {
		if !ways[i].valid {
			return i
		}
	}
	if c.assoc == 1 {
		return 0
	}
	if c.random {
		return c.rng.Intn(c.assoc)
	}
	best := 0
	for i := 1; i < c.assoc; i++ {
		if ways[i].used < ways[best].used {
			best = i
		}
	}
	return best
}

// invalidate removes the block containing addr if present.
func (c *refCache) invalidate(addr mem.PAddr) (present, dirty bool) {
	set, tag := c.index(addr)
	ways := c.set(set)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			dirty = ways[i].dirty
			ways[i] = refLine{}
			return true, dirty
		}
	}
	return false, false
}

// invalidateRange removes every block overlapping [addr, addr+size),
// invoking fn for each block that was present.
func (c *refCache) invalidateRange(addr mem.PAddr, size uint64, fn func(block mem.PAddr, dirty bool)) {
	start := uint64(addr) &^ (c.blockBytes - 1)
	end := uint64(addr) + size
	for b := start; b < end; b += c.blockBytes {
		if present, dirty := c.invalidate(mem.PAddr(b)); present && fn != nil {
			fn(mem.PAddr(b), dirty)
		}
	}
}

// countValid reports resident and dirty line counts, for state
// summaries in divergence reports.
func (c *refCache) countValid() (valid, dirty int) {
	for i := range c.lines {
		if c.lines[i].valid {
			valid++
			if c.lines[i].dirty {
				dirty++
			}
		}
	}
	return valid, dirty
}
