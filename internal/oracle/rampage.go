package oracle

import (
	"fmt"

	"rampage/internal/mem"
	"rampage/internal/metrics"
	"rampage/internal/sim"
	"rampage/internal/stats"
	"rampage/internal/synth"
)

// refMemory is the reference SRAM main memory of §2: a paged physical
// memory managed by an inverted page table with clock replacement,
// fronted by a TLB, with the OS region (fixed kernel span + the table
// itself) identity-pinned in the lowest frames.
type refMemory struct {
	pt        *refPageTable
	tlb       *refTLB
	pageBytes uint64
	pageShift uint
	frames    uint64
	osPages   uint64

	seen     map[refSeenKey]uint64 // virtual page -> backing DRAM address
	dramNext uint64                // DRAM allocation watermark
}

type refSeenKey struct {
	pid mem.PID
	vpn uint64
}

// refFault describes one SRAM page fault, mirroring core.Fault.
type refFault struct {
	scanAddrs        []uint64
	updateAddrs      []uint64
	victimValid      bool
	victimDirty      bool
	victimTLBEvicted bool
	victimPageAddr   mem.PAddr
	firstTouch       bool
	pageDRAMAddr     uint64
	victimDRAMAddr   uint64
}

// refOutcome describes one translation, mirroring core.Outcome.
type refOutcome struct {
	addr     mem.PAddr
	tlbMiss  bool
	ptProbes []uint64
	fault    *refFault
}

func newRefMemory(totalBytes, pageBytes uint64, tlbEntries, tlbAssoc int, seed uint64, policyName string) (*refMemory, error) {
	if pageBytes == 0 || !mem.IsPow2(pageBytes) {
		return nil, fmt.Errorf("oracle: page size %d is not a power of two", pageBytes)
	}
	if totalBytes == 0 || totalBytes%pageBytes != 0 {
		return nil, fmt.Errorf("oracle: SRAM size %d is not a multiple of page size %d", totalBytes, pageBytes)
	}
	frames := totalBytes / pageBytes
	pt, err := newRefPageTable(frames, pageBytes, synth.KernelBase+synth.KernelFixedBytes, false, 0, policyName, seed)
	if err != nil {
		return nil, err
	}
	tb, err := newRefTLB(tlbEntries, tlbAssoc, pageBytes, seed)
	if err != nil {
		return nil, err
	}
	m := &refMemory{
		pt:        pt,
		tlb:       tb,
		pageBytes: pageBytes,
		pageShift: mem.Log2(pageBytes),
		frames:    frames,
		seen:      make(map[refSeenKey]uint64),
	}
	osBytes := synth.KernelFixedBytes + pt.tableBytes()
	m.osPages = (osBytes + pageBytes - 1) / pageBytes
	if m.osPages >= frames {
		return nil, fmt.Errorf("oracle: OS reservation (%d pages) exceeds SRAM (%d frames) at page size %d",
			m.osPages, frames, pageBytes)
	}
	// Pin the OS region in the lowest frames, mapped under the kernel
	// PID so the table is self-describing.
	for i := uint64(0); i < m.osPages; i++ {
		f, ok := pt.allocFree()
		if !ok || f != i {
			return nil, fmt.Errorf("oracle: OS frame allocation out of order (got %d, want %d)", f, i)
		}
		vpn := (uint64(synth.KernelBase) >> m.pageShift) + i
		if err := pt.mapFrame(mem.KernelPID, vpn, f); err != nil {
			return nil, err
		}
		pt.pin(f)
	}
	return m, nil
}

// kernelPhys translates a kernel virtual address directly (the OS
// region is identity-pinned at the bottom of SRAM and bypasses the
// TLB).
func (m *refMemory) kernelPhys(va mem.VAddr) (mem.PAddr, error) {
	off := uint64(va) - synth.KernelBase
	if uint64(va) < synth.KernelBase || off >= m.osPages*m.pageBytes {
		return 0, fmt.Errorf("oracle: kernel address %#x outside pinned OS region", uint64(va))
	}
	return mem.PAddr(off), nil
}

// translate resolves a user reference to an SRAM physical address,
// performing TLB fill, page-table walk and page replacement as needed.
func (m *refMemory) translate(pid mem.PID, va mem.VAddr, write bool) (refOutcome, error) {
	if pid == mem.KernelPID {
		pa, err := m.kernelPhys(va)
		if err != nil {
			return refOutcome{}, err
		}
		if write {
			m.pt.setDirty(uint64(pa) >> m.pageShift)
		}
		return refOutcome{addr: pa}, nil
	}
	if pa, hit := m.tlb.lookup(pid, va); hit {
		if write {
			m.pt.setDirty(uint64(pa) >> m.pageShift)
		}
		return refOutcome{addr: pa}, nil
	}
	// TLB miss: walk the pinned inverted page table.
	vpn := uint64(va) >> m.pageShift
	frame, probes, found := m.pt.lookup(pid, vpn, nil)
	out := refOutcome{tlbMiss: true, ptProbes: probes}
	if !found {
		f, fault, err := m.pageFault(pid, vpn)
		if err != nil {
			return refOutcome{}, err
		}
		frame = f
		out.fault = fault
	}
	m.tlb.insert(pid, va, frame)
	if write {
		m.pt.setDirty(frame)
	}
	out.addr = mem.PAddr(frame<<m.pageShift | uint64(va)&(m.pageBytes-1))
	return out, nil
}

// pageFault brings (pid, vpn) into a frame, replacing if necessary.
func (m *refMemory) pageFault(pid mem.PID, vpn uint64) (uint64, *refFault, error) {
	fault := &refFault{}
	frame, free := m.pt.allocFree()
	if !free {
		victim, scans, ok := m.pt.selectVictim(nil)
		if !ok {
			return 0, nil, fmt.Errorf("oracle: no replaceable SRAM page (all pinned)")
		}
		vpid, vvpn, dirty, err := m.pt.unmap(victim)
		if err != nil {
			return 0, nil, err
		}
		fault.victimTLBEvicted = m.tlb.invalidate(vpid, mem.VAddr(vvpn<<m.pageShift))
		fault.victimDRAMAddr = m.seen[refSeenKey{vpid, vvpn}]
		fault.scanAddrs = scans
		fault.victimValid = true
		fault.victimDirty = dirty
		fault.victimPageAddr = mem.PAddr(victim << m.pageShift)
		fault.updateAddrs = append(fault.updateAddrs, m.pt.entryAddr(victim))
		frame = victim
	}
	if err := m.pt.mapFrame(pid, vpn, frame); err != nil {
		return 0, nil, err
	}
	fault.updateAddrs = append(fault.updateAddrs, m.pt.entryAddr(frame))

	key := refSeenKey{pid, vpn}
	dramAddr, ok := m.seen[key]
	if !ok {
		dramAddr = m.dramNext
		m.dramNext += m.pageBytes
		m.seen[key] = dramAddr
		fault.firstTouch = true
	}
	fault.pageDRAMAddr = dramAddr
	m.pt.pol.insert(frame, !fault.firstTouch)
	return frame, fault, nil
}

func (m *refMemory) pinPage(pa mem.PAddr) {
	frame := uint64(pa) >> m.pageShift
	if frame < m.frames {
		m.pt.pin(frame)
	}
}

func (m *refMemory) unpinPage(pa mem.PAddr) {
	frame := uint64(pa) >> m.pageShift
	if frame >= m.osPages && frame < m.frames {
		m.pt.unpin(frame)
	}
}

func (m *refMemory) markDirty(pa mem.PAddr) {
	frame := uint64(pa) >> m.pageShift
	if frame < m.frames {
		m.pt.setDirty(frame)
	}
}

// RAMpage is the reference model of the paper's machine (§4.5): split
// L1 in front of a software-managed SRAM main memory, with the Rambus
// channel below as a paging device. It implements sim.Machine and is
// required to produce a report bit-identical to sim.RAMpage's for the
// same configuration and trace.
type RAMpage struct {
	cfg    sim.RAMpageConfig
	clk    refClock
	l1i    *refCache
	l1d    *refCache
	mm     *refMemory
	kernel *synth.Kernel

	rep        stats.Report
	chanFreeAt mem.Cycles // Rambus channel occupancy for async transfers
	inFlight   []refInFlightPage
}

// refInFlightPage tracks a pinned page whose DRAM transfer completes at
// ready.
type refInFlightPage struct {
	page  mem.PAddr
	ready mem.Cycles
}

// NewRAMpage builds the reference machine. The prefetch extension and
// non-default DRAM devices have no reference model and are rejected.
func NewRAMpage(cfg sim.RAMpageConfig) (*RAMpage, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := checkParams(cfg.Params); err != nil {
		return nil, err
	}
	if cfg.PrefetchNext {
		return nil, fmt.Errorf("oracle: the next-page prefetch extension is not modeled")
	}
	if cfg.L1WBPenalty == 0 {
		cfg.L1WBPenalty = 9
	}
	clk, err := newRefClock(cfg.Clock)
	if err != nil {
		return nil, err
	}
	l1i, err := newRefCache(cfg.L1Bytes, cfg.L1Block, cfg.L1Assoc, false, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	l1d, err := newRefCache(cfg.L1Bytes, cfg.L1Block, cfg.L1Assoc, false, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	mm, err := newRefMemory(cfg.SRAMBytes, cfg.PageBytes, cfg.TLBEntries, cfg.TLBAssoc, cfg.Seed+6, cfg.Policy)
	if err != nil {
		return nil, err
	}
	name := "rampage"
	if cfg.SwitchOnMiss {
		name = "rampage-cs"
	}
	if pol := mm.pt.pol.name(); pol != "clock" {
		name += "+" + pol
	}
	return &RAMpage{
		cfg:    cfg,
		clk:    clk,
		l1i:    l1i,
		l1d:    l1d,
		mm:     mm,
		kernel: synth.NewKernel(cfg.Seed + 7),
		rep:    stats.Report{Name: name, Clock: cfg.Clock, BlockBytes: cfg.PageBytes},
	}, nil
}

// Report implements sim.Machine.
func (r *RAMpage) Report() *stats.Report { return &r.rep }

// SetObserver implements sim.Machine. The oracle emits no observer
// events; its report is the only state the differential engine
// compares, and that report is bit-identical with or without an
// observer by construction.
func (r *RAMpage) SetObserver(obs metrics.Observer) {}

// Now implements sim.Machine.
func (r *RAMpage) Now() mem.Cycles { return r.rep.Cycles }

// AdvanceTo implements sim.Machine.
func (r *RAMpage) AdvanceTo(t mem.Cycles) {
	if t > r.rep.Cycles {
		idle := t - r.rep.Cycles
		r.rep.IdleCycles += idle
		r.rep.Charge(stats.DRAM, idle)
	}
}

// Exec implements sim.Machine. In switch-on-miss mode a page fault
// returns the absolute cycle at which the page arrives; the reference
// did not execute and must be retried after that time.
func (r *RAMpage) Exec(ref mem.Ref) (mem.Cycles, error) {
	return r.execOne(ref, sim.ClassBench)
}

// ExecBatch implements sim.Machine as a plain Exec loop: the reference
// model has no fast path, which is the point.
func (r *RAMpage) ExecBatch(refs []mem.Ref) (int, mem.Cycles, error) {
	for i := range refs {
		block, err := r.execOne(refs[i], sim.ClassBench)
		if err != nil {
			return i, 0, err
		}
		if block != 0 {
			return i, block, nil
		}
	}
	return len(refs), 0, nil
}

// ExecTrace implements sim.Machine. Operating-system references are
// pinned in SRAM (§4.6) and can never fault.
func (r *RAMpage) ExecTrace(refs []mem.Ref, class sim.RefClass) error {
	for _, ref := range refs {
		if block, err := r.execOne(ref, class); err != nil {
			return err
		} else if block != 0 {
			return fmt.Errorf("oracle: pinned OS reference faulted")
		}
	}
	return nil
}

func (r *RAMpage) countRef(class sim.RefClass) {
	switch class {
	case sim.ClassBench:
		r.rep.BenchRefs++
	case sim.ClassTLB:
		r.rep.OSTLBRefs++
	case sim.ClassFault:
		r.rep.OSFaultRefs++
	case sim.ClassSwitch:
		r.rep.OSSwitchRefs++
	}
}

func (r *RAMpage) execOne(ref mem.Ref, class sim.RefClass) (mem.Cycles, error) {
	r.unpinCompleted()
	out, err := r.mm.translate(ref.PID, ref.Addr, ref.Kind == mem.Store)
	if err != nil {
		return 0, err
	}
	if out.tlbMiss {
		r.rep.TLBMisses++
		// The TLB-miss handler walks the pinned inverted page table;
		// its references hit SRAM by construction (§2.3).
		trc := r.kernel.AppendTLBMiss(nil, out.ptProbes)
		start := r.rep.Cycles
		if err := r.ExecTrace(trc, sim.ClassTLB); err != nil {
			return 0, err
		}
		r.rep.TLBHandlerCycles += r.rep.Cycles - start
	} else if ref.PID != mem.KernelPID {
		r.rep.TLBHits++
	}
	if out.fault != nil {
		block, err := r.handleFault(out.fault)
		if err != nil {
			return 0, err
		}
		if block != 0 {
			// Lock the frame for the duration of its transfer: the clock
			// hand must not steal the page before the blocked process
			// resumes.
			page := out.addr &^ mem.PAddr(r.cfg.PageBytes-1)
			r.mm.pinPage(page)
			r.inFlight = append(r.inFlight, refInFlightPage{page: page, ready: block})
			return block, nil
		}
	}
	r.countRef(class)
	r.accessL1(ref.Kind, out.addr)
	return 0, nil
}

// unpinCompleted releases in-flight page locks whose transfers have
// finished by the current simulated time.
func (r *RAMpage) unpinCompleted() {
	if len(r.inFlight) == 0 {
		return
	}
	now := r.rep.Cycles
	kept := r.inFlight[:0]
	for _, p := range r.inFlight {
		if p.ready <= now {
			r.mm.unpinPage(p.page)
		} else {
			kept = append(kept, p)
		}
	}
	r.inFlight = kept
}

// handleFault runs the page-fault handler trace, purges the victim page
// from L1, and either stalls on the Rambus transfers or (switch-on-
// miss) schedules them on the channel and returns the completion time.
func (r *RAMpage) handleFault(f *refFault) (mem.Cycles, error) {
	r.rep.PageFaults++
	trc := r.kernel.AppendPageFault(nil, f.scanAddrs, f.updateAddrs)
	start := r.rep.Cycles
	if err := r.ExecTrace(trc, sim.ClassFault); err != nil {
		return 0, err
	}
	r.rep.FaultHandlerCycles += r.rep.Cycles - start
	total := r.pageTransferCycles(f)
	if r.cfg.SwitchOnMiss {
		start := r.rep.Cycles
		if r.chanFreeAt > start {
			start = r.chanFreeAt
		}
		ready := start + total
		r.chanFreeAt = ready
		return ready, nil
	}
	r.rep.Charge(stats.DRAM, total)
	return 0, nil
}

// pageTransferCycles performs the victim bookkeeping for a fault and
// returns the total Rambus time: the victim write-back (when needed)
// followed by the page fetch, serialized on the unpipelined channel.
func (r *RAMpage) pageTransferCycles(f *refFault) mem.Cycles {
	var total mem.Cycles
	if r.applyVictim(f) {
		total += r.clk.transferCycles(r.cfg.PageBytes)
		r.dramTransfer()
	}
	fetch := r.clk.transferCycles(r.cfg.PageBytes)
	r.dramTransfer()
	return total + fetch
}

// dramTransfer accounts one real page-sized transfer on the Rambus
// channel; the caller times it.
func (r *RAMpage) dramTransfer() {
	r.rep.DRAMTransfers++
	r.rep.DRAMBytes += r.cfg.PageBytes
}

// applyVictim performs the replacement bookkeeping for a fault: L1
// inclusion purge of the departing page (§2.3) and the write-back
// decision.
func (r *RAMpage) applyVictim(f *refFault) bool {
	r.rep.ClockScans += uint64(len(f.scanAddrs))
	if f.victimTLBEvicted {
		r.rep.TLBEvictions++
	}
	writeback := false
	if f.victimValid {
		// Inclusion: the replaced page's blocks leave L1 (§2.3). Dirty
		// blocks merge into the departing page, dirtying it.
		dirty := r.purgeL1(f.victimPageAddr, r.cfg.PageBytes)
		writeback = f.victimDirty || dirty > 0
	}
	if writeback {
		r.rep.Writebacks++
	}
	return writeback
}

// purgeL1 invalidates [addr, addr+size) from both L1 sides, charging
// one cycle per present block and the write-back penalty for dirty data
// blocks.
func (r *RAMpage) purgeL1(addr mem.PAddr, size uint64) (dirtyBlocks int) {
	r.l1i.invalidateRange(addr, size, func(block mem.PAddr, dirty bool) {
		r.rep.Charge(stats.L1I, 1)
	})
	r.l1d.invalidateRange(addr, size, func(block mem.PAddr, dirty bool) {
		r.rep.Charge(stats.L1D, 1)
		if dirty {
			r.rep.Charge(stats.L2, r.cfg.L1WBPenalty)
			dirtyBlocks++
		}
	})
	return dirtyBlocks
}

// l1side returns the L1 cache a reference kind uses.
func (r *RAMpage) l1side(kind mem.RefKind) *refCache {
	if kind.IsData() {
		return r.l1d
	}
	return r.l1i
}

// accessL1 runs the reference through the split L1. After translation
// the data is resident in the SRAM main memory — full associativity
// with no tag check (§2.2) — so an L1 miss costs exactly the SRAM
// access penalty and never goes deeper.
func (r *RAMpage) accessL1(kind mem.RefKind, pa mem.PAddr) {
	if kind == mem.IFetch {
		r.rep.Charge(stats.L1I, 1)
	}
	res := r.l1side(kind).access(pa, kind == mem.Store)
	if res.hit {
		return
	}
	if kind == mem.IFetch {
		r.rep.L1IMisses++
	} else {
		r.rep.L1DMisses++
	}
	r.rep.Charge(stats.L2, r.cfg.L1MissPenalty)
	if res.evictedDirty {
		// Write back to SRAM: no tag update (§4.3). The receiving page
		// becomes dirty.
		r.rep.Charge(stats.L2, r.cfg.L1WBPenalty)
		r.mm.markDirty(res.writebackAddr)
	}
}

// StateSummary describes the machine's internal state for divergence
// reports.
func (r *RAMpage) StateSummary() string {
	l1iv, l1id := r.l1i.countValid()
	l1dv, l1dd := r.l1d.countValid()
	ptv, ptp := r.mm.pt.countValid()
	return fmt.Sprintf("l1i %d lines (%d dirty), l1d %d lines (%d dirty), tlb %d entries, pt %d mapped (%d pinned), %s, %d in flight, chan free at %d",
		l1iv, l1id, l1dv, l1dd, r.mm.tlb.countValid(), ptv, ptp, r.mm.pt.pol.stateSummary(), len(r.inFlight), r.chanFreeAt)
}
