// Package oracle contains small, slow, obviously-correct reference
// models of the paper's three hierarchies — the direct-mapped L2
// baseline (§4.4), the RAMpage inverted-page-table + clock machine
// (§4.5) and the 2-way associative L2 comparison (§4.7) — plus the
// Direct Rambus timing model (§4.3: 50 ns before the first datum, then
// 2 bytes every 1.25 ns).
//
// The models are written straight from DESIGN.md/PAPER.md with none of
// the production simulator's acceleration machinery: no batched
// executors, no packed-key TLB scans, no split cache hit paths, no
// reusable event buffers. Every structure is a plain struct scan. The
// only code shared with the production tree is the deterministic
// vocabulary the specification itself pins down — the SplitMix64
// stream (internal/xrand), the synthetic OS kernel traces
// (internal/synth) and the primitive types (internal/mem,
// internal/stats) — because the machines are required to be
// bit-identical for the same seed, which fixes those streams as part
// of the spec.
//
// On top of the models sit two checking tools:
//
//   - diff.go replays the same seeded trace through an oracle machine
//     and a production machine in lockstep (per-reference or batched)
//     and reports the first divergent reference with full state
//     context;
//   - invariant.go is a metrics.Observer asserting machine-level
//     invariants online (cycle monotonicity and attribution, L1⊆L2 /
//     SRAM residency, TLB↔page-table coherence, clock-hand bounds,
//     DRAM transfer accounting), attachable to any experiment cell via
//     rampage-bench -verify.
package oracle

import (
	"fmt"

	"rampage/internal/dram"
	"rampage/internal/mem"
	"rampage/internal/sim"
)

// Direct Rambus constants, straight from §4.3: "50 ns before the
// first datum, then 2 bytes every 1.25 ns".
const (
	rambusStartPicos = 50_000 // 50 ns startup latency
	rambusPairPicos  = 1_250  // 1.25 ns per 2-byte beat
)

// rambusPicos is the paper's transfer time for n contiguous bytes.
func rambusPicos(n uint64) uint64 {
	return rambusStartPicos + rambusPairPicos*((n+1)/2)
}

// refClock converts absolute DRAM time to CPU cycles, rounding up: a
// device busy for any fraction of a cycle occupies the whole cycle.
// It is derived from the issue rate alone so the oracle's arithmetic
// is independent of mem.Clock's.
type refClock struct {
	cycleTimePicos uint64
}

func newRefClock(c mem.Clock) (refClock, error) {
	mhz := c.IssueMHz()
	if mhz == 0 || 1_000_000%mhz != 0 {
		return refClock{}, fmt.Errorf("oracle: issue rate %d MHz has no integral picosecond cycle time", mhz)
	}
	return refClock{cycleTimePicos: 1_000_000 / mhz}, nil
}

func (c refClock) cyclesFrom(picos uint64) mem.Cycles {
	return mem.Cycles((picos + c.cycleTimePicos - 1) / c.cycleTimePicos)
}

// transferCycles is the CPU-cycle cost of one n-byte Direct Rambus
// transfer at this clock.
func (c refClock) transferCycles(n uint64) mem.Cycles {
	return c.cyclesFrom(rambusPicos(n))
}

// checkParams rejects configurations outside the oracle's scope. The
// oracle models exactly the paper's device: the unpipelined Direct
// Rambus channel with default timing. Ablation variants (pipelined
// channel, SDRAM, banked RDRAM) have no reference model.
func checkParams(p sim.Params) error {
	d, ok := p.DRAM.(dram.DirectRambus)
	if !ok || d != dram.NewDirectRambus() {
		return fmt.Errorf("oracle: only the paper's Direct Rambus device (50 ns + 1.25 ns/2 B) is modeled")
	}
	if p.PipelinedDRAM {
		return fmt.Errorf("oracle: the pipelined DRAM channel ablation is not modeled")
	}
	return nil
}
