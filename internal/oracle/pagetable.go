package oracle

import (
	"fmt"

	"rampage/internal/mem"
	"rampage/internal/xrand"
)

// refPageTable is the reference inverted page table of §2.2: a hash
// anchor table whose buckets chain frame entries, with the §4.5 clock
// replacement ("a clock hand advances through the page table, marking
// each page that has previously been marked as 'in use' as 'unused',
// until an 'unused' page is found"). The hash and the free-list
// scramble are the deterministic streams the design pins (SplitMix64
// finalizer; Fisher–Yates over the tail beyond the first 1/32 of
// frames, seeded scrambleSeed ^ 0x5C4A3B1E).
type refPageTable struct {
	frames    uint64
	pageBytes uint64
	tableBase uint64
	entries   []refPTEntry
	hat       []int32 // bucket -> first frame, -1 = empty
	hatMask   uint64
	freeHead  int32
	freeNext  []int32

	// pol ranks frames for replacement; the clock mirror is the
	// default. Its setSkew knob plants the test-only seeded faults the
	// differential engine must catch.
	pol refPolicy
}

type refPTEntry struct {
	valid  bool
	pid    mem.PID
	vpn    uint64
	used   bool
	dirty  bool
	pinned bool
	next   int32 // next frame in hash chain, -1 = end
}

// Entry sizes, from the design: 16 bytes per frame entry, 4 bytes per
// hash-anchor slot.
const (
	refEntryBytes    = 16
	refHATEntryBytes = 4
)

func newRefPageTable(frames, pageBytes, tableBase uint64, scramble bool, scrambleSeed uint64, policyName string, policySeed uint64) (*refPageTable, error) {
	if frames == 0 {
		return nil, fmt.Errorf("oracle: page table with zero frames")
	}
	pol, err := newRefPolicy(policyName, frames, policySeed)
	if err != nil {
		return nil, err
	}
	if pageBytes == 0 || !mem.IsPow2(pageBytes) {
		return nil, fmt.Errorf("oracle: page size %d is not a power of two", pageBytes)
	}
	hatSize := uint64(1)
	for hatSize < frames {
		hatSize <<= 1
	}
	pt := &refPageTable{
		frames:    frames,
		pageBytes: pageBytes,
		tableBase: tableBase,
		entries:   make([]refPTEntry, frames),
		hat:       make([]int32, hatSize),
		hatMask:   hatSize - 1,
		freeNext:  make([]int32, frames),
		pol:       pol,
	}
	for i := range pt.hat {
		pt.hat[i] = -1
	}
	order := make([]int32, frames)
	for i := range order {
		order[i] = int32(i)
	}
	if scramble {
		rng := xrand.New(scrambleSeed ^ 0x5C4A3B1E)
		fixed := int(frames / 32)
		for i := len(order) - 1; i > fixed; i-- {
			j := fixed + 1 + rng.Intn(i-fixed)
			order[i], order[j] = order[j], order[i]
		}
	}
	pt.freeHead = order[0]
	for i := 0; i < len(order)-1; i++ {
		pt.freeNext[order[i]] = order[i+1]
	}
	pt.freeNext[order[len(order)-1]] = -1
	return pt, nil
}

func (pt *refPageTable) hash(pid mem.PID, vpn uint64) uint64 {
	return xrand.Mix(uint64(pid)<<48^vpn) & pt.hatMask
}

func (pt *refPageTable) hatAddr(bucket uint64) uint64 {
	return pt.tableBase + bucket*refHATEntryBytes
}

func (pt *refPageTable) entryAddr(frame uint64) uint64 {
	return pt.tableBase + uint64(len(pt.hat))*refHATEntryBytes + frame*refEntryBytes
}

func (pt *refPageTable) tableBytes() uint64 {
	return uint64(len(pt.hat))*refHATEntryBytes + pt.frames*refEntryBytes
}

// lookup walks the hash chain for (pid, vpn), appending every table
// address touched (the anchor slot and each chain entry) to probes and
// marking the found frame's use bit.
func (pt *refPageTable) lookup(pid mem.PID, vpn uint64, probes []uint64) (uint64, []uint64, bool) {
	bucket := pt.hash(pid, vpn)
	probes = append(probes, pt.hatAddr(bucket))
	for idx := pt.hat[bucket]; idx >= 0; idx = pt.entries[idx].next {
		probes = append(probes, pt.entryAddr(uint64(idx)))
		e := &pt.entries[idx]
		if e.valid && e.pid == pid && e.vpn == vpn {
			e.used = true
			pt.pol.touch(uint64(idx))
			return uint64(idx), probes, true
		}
	}
	return 0, probes, false
}

func (pt *refPageTable) allocFree() (uint64, bool) {
	if pt.freeHead < 0 {
		return 0, false
	}
	f := uint64(pt.freeHead)
	pt.freeHead = pt.freeNext[f]
	return f, true
}

func (pt *refPageTable) mapFrame(pid mem.PID, vpn, frame uint64) error {
	if frame >= pt.frames {
		return fmt.Errorf("oracle: frame %d out of range", frame)
	}
	e := &pt.entries[frame]
	if e.valid {
		return fmt.Errorf("oracle: frame %d already maps (pid %d, vpn %#x)", frame, e.pid, e.vpn)
	}
	bucket := pt.hash(pid, vpn)
	*e = refPTEntry{valid: true, pid: pid, vpn: vpn, used: true, next: pt.hat[bucket]}
	pt.hat[bucket] = int32(frame)
	return nil
}

func (pt *refPageTable) unmap(frame uint64) (pid mem.PID, vpn uint64, dirty bool, err error) {
	if frame >= pt.frames || !pt.entries[frame].valid {
		return 0, 0, false, fmt.Errorf("oracle: frame %d not mapped", frame)
	}
	e := pt.entries[frame]
	bucket := pt.hash(e.pid, e.vpn)
	if pt.hat[bucket] == int32(frame) {
		pt.hat[bucket] = e.next
	} else {
		for idx := pt.hat[bucket]; idx >= 0; idx = pt.entries[idx].next {
			if pt.entries[idx].next == int32(frame) {
				pt.entries[idx].next = e.next
				break
			}
		}
	}
	pt.entries[frame] = refPTEntry{}
	return e.pid, e.vpn, e.dirty, nil
}

func (pt *refPageTable) setDirty(frame uint64) { pt.entries[frame].dirty = true }
func (pt *refPageTable) pin(frame uint64)      { pt.entries[frame].pinned = true }
func (pt *refPageTable) unpin(frame uint64)    { pt.entries[frame].pinned = false }

// selectVictim delegates victim choice to the replacement policy,
// accumulating each policy's scan-address convention into scanAddrs
// (the clock clears use bits as it sweeps; see refPolicy).
func (pt *refPageTable) selectVictim(scanAddrs []uint64) (uint64, []uint64, bool) {
	return pt.pol.selectVictim(pt, scanAddrs)
}

// countValid reports mapped and pinned frame counts, for state
// summaries in divergence reports.
func (pt *refPageTable) countValid() (valid, pinned int) {
	for i := range pt.entries {
		if pt.entries[i].valid {
			valid++
		}
		if pt.entries[i].pinned {
			pinned++
		}
	}
	return valid, pinned
}
