package oracle

import (
	"flag"
	"fmt"
	"testing"

	"rampage/internal/cache"
	"rampage/internal/mem"
	"rampage/internal/sim"
)

// -long runs the multi-million-reference differential sweeps (the
// scheduled CI job); the default suite stays small enough for every
// push.
var longMode = flag.Bool("long", false, "run the long differential traces")

// refCount returns the per-workload trace length: short for the CI
// suite, multi-million under -long.
func refCount() int {
	if *longMode {
		return 3_000_000
	}
	return 40_000
}

// Workload generators. These are deliberately simple deterministic
// reference streams — no RNG — shaped to stress different parts of the
// hierarchies: the differential engine only needs the two
// implementations to disagree on SOMETHING for a bug to surface, so
// what matters is coverage of hits, conflict misses, page faults, clock
// replacement and write-backs, not realism.

const (
	wlCodeBase = 0x0040_0000
	wlDataBase = 0x1000_0000
	wlHeapBase = 0x2000_0000
)

// wlLoop is an instruction loop over a few code pages with a small
// strided data walk: mostly L1 hits with periodic TLB misses.
func wlLoop(pid mem.PID, n int) []mem.Ref {
	refs := make([]mem.Ref, 0, n)
	for i := 0; len(refs) < n; i++ {
		refs = append(refs, mem.Ref{PID: pid, Kind: mem.IFetch,
			Addr: mem.VAddr(wlCodeBase + uint64(i%4096)*4)})
		if len(refs) < n && i%3 == 0 {
			kind := mem.Load
			if i%21 == 0 {
				kind = mem.Store
			}
			refs = append(refs, mem.Ref{PID: pid, Kind: kind,
				Addr: mem.VAddr(wlDataBase + uint64(i*64)%(96<<10))})
		}
	}
	return refs[:n]
}

// wlSweep is a store-heavy sequential sweep over a footprint larger
// than the L2/SRAM under test: it forces capacity misses, page faults,
// clock replacement and dirty write-backs.
func wlSweep(pid mem.PID, n int) []mem.Ref {
	const footprint = 1 << 20
	refs := make([]mem.Ref, 0, n)
	for i := 0; len(refs) < n; i++ {
		refs = append(refs, mem.Ref{PID: pid, Kind: mem.IFetch,
			Addr: mem.VAddr(wlCodeBase + uint64(i%512)*4)})
		if len(refs) < n {
			refs = append(refs, mem.Ref{PID: pid, Kind: mem.Store,
				Addr: mem.VAddr(wlHeapBase + uint64(i*48)%footprint)})
		}
	}
	return refs[:n]
}

// wlMixed interleaves three processes with different access patterns in
// irregular runs, exercising PID-tagged TLB/page-table state and
// inter-process conflict.
func wlMixed(n int) []mem.Ref {
	parts := [][]mem.Ref{
		wlLoop(1, n/3),
		wlSweep(2, n/3),
		wlLoop(3, n-2*(n/3)),
	}
	// Rotate between the streams in runs of varying length.
	refs := make([]mem.Ref, 0, n)
	pos := [3]int{}
	for k := 0; len(refs) < n; k++ {
		src := k % 3
		run := 17 + (k%7)*13
		for j := 0; j < run && pos[src] < len(parts[src]); j++ {
			refs = append(refs, parts[src][pos[src]])
			pos[src]++
		}
	}
	return refs[:n]
}

// workloads returns the named differential traces.
func workloads(n int) map[string][]mem.Ref {
	return map[string][]mem.Ref{
		"loop":  wlLoop(1, n),
		"sweep": wlSweep(1, n),
		"mixed": wlMixed(n),
	}
}

// Small machine configurations: capacities are shrunk until the
// workloads overflow every level, so replacement logic actually runs.

func testParams(mhz, seed uint64) sim.Params {
	p := sim.DefaultParams(mhz)
	p.Seed = seed
	return p
}

func baselineCfg(assoc int, mhz, seed uint64) sim.BaselineConfig {
	policy := cache.LRU
	if assoc > 1 {
		policy = cache.RandomRepl
	}
	return sim.BaselineConfig{
		Params:    testParams(mhz, seed),
		L2Bytes:   128 << 10,
		L2Block:   512,
		L2Assoc:   assoc,
		L2Policy:  policy,
		DRAMBytes: 8 << 20,
	}
}

func rampageCfg(switchOnMiss bool, mhz, seed uint64) sim.RAMpageConfig {
	return sim.RAMpageConfig{
		Params:       testParams(mhz, seed),
		SRAMBytes:    160 << 10,
		PageBytes:    512,
		SwitchOnMiss: switchOnMiss,
	}
}

// system is one cell of the differential matrix: a factory for the
// oracle and subject machines of one hierarchy variant.
type system struct {
	name  string
	build func(t *testing.T, mhz, seed uint64) (orc, subj sim.Machine)
}

func buildBaselinePair(t *testing.T, assoc int, mhz, seed uint64) (sim.Machine, sim.Machine) {
	t.Helper()
	cfg := baselineCfg(assoc, mhz, seed)
	orc, err := NewBaseline(cfg)
	if err != nil {
		t.Fatalf("oracle baseline: %v", err)
	}
	subj, err := sim.NewBaseline(cfg)
	if err != nil {
		t.Fatalf("sim baseline: %v", err)
	}
	return orc, subj
}

func buildRAMpagePair(t *testing.T, switchOnMiss bool, mhz, seed uint64) (sim.Machine, sim.Machine) {
	t.Helper()
	cfg := rampageCfg(switchOnMiss, mhz, seed)
	orc, err := NewRAMpage(cfg)
	if err != nil {
		t.Fatalf("oracle rampage: %v", err)
	}
	subj, err := sim.NewRAMpage(cfg)
	if err != nil {
		t.Fatalf("sim rampage: %v", err)
	}
	return orc, subj
}

func systems() []system {
	return []system{
		{"baseline-dm", func(t *testing.T, mhz, seed uint64) (sim.Machine, sim.Machine) {
			return buildBaselinePair(t, 1, mhz, seed)
		}},
		{"l2-2way", func(t *testing.T, mhz, seed uint64) (sim.Machine, sim.Machine) {
			return buildBaselinePair(t, 2, mhz, seed)
		}},
		{"rampage", func(t *testing.T, mhz, seed uint64) (sim.Machine, sim.Machine) {
			return buildRAMpagePair(t, false, mhz, seed)
		}},
		{"rampage-cs", func(t *testing.T, mhz, seed uint64) (sim.Machine, sim.Machine) {
			return buildRAMpagePair(t, true, mhz, seed)
		}},
	}
}

// TestLockstep replays every workload through every hierarchy variant
// on both the oracle and the production machine, reference by
// reference, requiring bit-identical reports after every single
// reference.
func TestLockstep(t *testing.T) {
	n := refCount()
	for name, refs := range workloads(n) {
		for _, sys := range systems() {
			t.Run(sys.name+"/"+name, func(t *testing.T) {
				orc, subj := sys.build(t, 1000, 42)
				if div := Lockstep(orc, subj, refs); div != nil {
					t.Fatalf("divergence:\n%s", div)
				}
			})
		}
	}
}

// TestLockstepBatch drives the subject through its batched path
// (ExecBatch) against the per-reference oracle. Batch sizes straddle
// the production default to cover window-boundary handling.
func TestLockstepBatch(t *testing.T) {
	n := refCount()
	for name, refs := range workloads(n) {
		for _, sys := range systems() {
			for _, batch := range []int{64, 512} {
				t.Run(fmt.Sprintf("%s/%s/b%d", sys.name, name, batch), func(t *testing.T) {
					orc, subj := sys.build(t, 1000, 42)
					if div := LockstepBatch(orc, subj, refs, batch); div != nil {
						t.Fatalf("divergence (batch %d):\n%s", batch, div)
					}
				})
			}
		}
	}
}

// TestLockstepIssueRates replays one miss-heavy workload across the
// issue-rate sweep, pinning the cycle-conversion (picosecond) math at
// every clock the paper uses.
func TestLockstepIssueRates(t *testing.T) {
	n := refCount() / 4
	refs := wlSweep(1, n)
	for _, mhz := range []uint64{200, 400, 800, 1000, 2000, 4000} {
		for _, sys := range systems() {
			orc, subj := sys.build(t, mhz, 42)
			if div := Lockstep(orc, subj, refs); div != nil {
				t.Fatalf("%s @ %d MHz: divergence:\n%s", sys.name, mhz, div)
			}
		}
	}
}

// TestDiffRunScheduled runs the full scheduler — quantum rotation,
// context-switch traces, switch-on-miss blocking — over a
// multiprogrammed workload on both machines, per-reference and batched,
// and requires identical final reports.
func TestDiffRunScheduled(t *testing.T) {
	n := refCount()
	streams := [][]mem.Ref{
		wlLoop(0, n/3), // PIDs are assigned by the scheduler
		wlSweep(0, n/3),
		wlLoop(0, n/3),
	}
	cfg := sim.SchedulerConfig{
		Quantum:           2_000,
		InsertSwitchTrace: true,
		Seed:              42,
	}
	for _, sys := range systems() {
		for _, batched := range []bool{false, true} {
			mode := "per-ref"
			if batched {
				mode = "batched"
			}
			t.Run(sys.name+"/"+mode, func(t *testing.T) {
				orc, subj := sys.build(t, 1000, 42)
				div, err := DiffRun(orc, subj, streams, cfg, batched)
				if err != nil {
					t.Fatalf("diff run: %v", err)
				}
				if div != nil {
					t.Fatalf("divergence:\n%s", div)
				}
			})
		}
	}
}

// TestOracleRejectsUnmodeledConfigs pins the oracle's scope: anything
// it cannot model bit-identically must be refused loudly, never
// silently approximated.
func TestOracleRejectsUnmodeledConfigs(t *testing.T) {
	bad := baselineCfg(1, 1000, 42)
	bad.VictimEntries = 8
	if _, err := NewBaseline(bad); err == nil {
		t.Error("victim-cache config accepted; the oracle does not model it")
	}
	pip := baselineCfg(1, 1000, 42)
	pip.PipelinedDRAM = true
	if _, err := NewBaseline(pip); err == nil {
		t.Error("pipelined-DRAM config accepted; the oracle does not model it")
	}
	pre := rampageCfg(false, 1000, 42)
	pre.PrefetchNext = true
	if _, err := NewRAMpage(pre); err == nil {
		t.Error("prefetch config accepted; the oracle does not model it")
	}
}
