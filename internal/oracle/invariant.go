package oracle

import (
	"fmt"

	"rampage/internal/metrics"
	"rampage/internal/sim"
	"rampage/internal/stats"
)

// deepChecker is implemented by machines that expose structural
// invariant checks (the production Baseline and RAMpage machines).
// Machines without it — the victim-cache and prefetch ablations, and
// the oracle's own reference models — still get the observer-level
// checks (tick monotonicity, DRAM transfer accounting).
type deepChecker interface {
	CheckInvariants() error
}

// deepCheckInterval is the number of scheduler ticks between deep
// machine-state checks. Deep checks walk every cache line and TLB
// entry, so running them on every tick would dominate the simulation;
// every 1024 ticks catches corruption within one scheduling window of
// where it happened while keeping verification runs tractable.
const deepCheckInterval = 1024

// InvariantChecker is a metrics.Observer that asserts machine-level
// invariants online while a simulation runs. Attach it with
// Machine.SetObserver (and as the SchedulerConfig.Observer so Tick
// fires at scheduling points); call Check after the run for the final
// verdict. The checker records the FIRST violation it sees, with the
// tick at which it was detected, and keeps forwarding events so a
// wrapped observer still sees the full stream.
//
// Observation is read-only and the checker never mutates the machine,
// so a verified run's Report is bit-identical to an unverified one.
// Unlike ordinary observers, the checker allocates when a deep check
// boundary passes — it is a verification tool, not a production probe.
type InvariantChecker struct {
	m    sim.Machine
	deep deepChecker // nil when the machine has no deep checks
	next metrics.Observer

	lastTick     uint64
	ticked       bool
	ticks        uint64
	obsDRAMBytes uint64 // sum of EvDRAMTransfer observations
	obsDRAMCount uint64

	err     error  // first violation
	errTick uint64 // tick count when it was recorded
}

// NewInvariantChecker builds a checker for m, forwarding all observer
// calls to next (which may be nil).
func NewInvariantChecker(m sim.Machine, next metrics.Observer) *InvariantChecker {
	c := &InvariantChecker{m: m, next: next}
	c.deep, _ = m.(deepChecker)
	return c
}

// record keeps the first violation.
func (c *InvariantChecker) record(err error) {
	if err != nil && c.err == nil {
		c.err = err
		c.errTick = c.ticks
	}
}

// Count forwards the event.
func (c *InvariantChecker) Count(e metrics.Event, n uint64) {
	if c.next != nil {
		c.next.Count(e, n)
	}
}

// Observe accumulates DRAM transfer accounting and forwards the event.
func (c *InvariantChecker) Observe(e metrics.Event, v uint64) {
	if e == metrics.EvDRAMTransfer {
		c.obsDRAMBytes += v
		c.obsDRAMCount++
	}
	if c.next != nil {
		c.next.Observe(e, v)
	}
}

// Tick checks cycle monotonicity on every call and runs the deep
// machine checks every deepCheckInterval ticks, then forwards.
func (c *InvariantChecker) Tick(now uint64) {
	if c.ticked && now < c.lastTick {
		c.record(fmt.Errorf("oracle: simulated time went backwards: tick %d after %d", now, c.lastTick))
	}
	c.lastTick = now
	c.ticked = true
	c.ticks++
	if c.deep != nil && c.ticks%deepCheckInterval == 0 {
		c.record(c.deep.CheckInvariants())
	}
	if c.next != nil {
		c.next.Tick(now)
	}
}

// Resume primes the checker's observed-transfer accounting from a
// report restored from a checkpoint: the transfers the captured run
// performed were observed by *its* checker, so a checker attached to
// the resumed run must start from the restored totals or Check's
// report-vs-observation reconciliation would flag every warm start.
func (c *InvariantChecker) Resume(rep *stats.Report) {
	c.obsDRAMCount = rep.DRAMTransfers
	c.obsDRAMBytes = rep.DRAMBytes
}

// Check runs the final deep checks and returns the first violation
// observed during the run, annotated with when it was detected.
func (c *InvariantChecker) Check() error {
	if c.deep != nil {
		c.record(c.deep.CheckInvariants())
		// The observed event stream must agree with the report: every
		// real Rambus transfer is both counted and observed. Machines
		// without SetObserver-driven emission (ablations) are excluded
		// by the deep gate above.
		rep := c.m.Report()
		if c.obsDRAMCount != rep.DRAMTransfers || c.obsDRAMBytes != rep.DRAMBytes {
			c.record(fmt.Errorf("oracle: observer saw %d DRAM transfers (%d bytes), report has %d (%d bytes)",
				c.obsDRAMCount, c.obsDRAMBytes, rep.DRAMTransfers, rep.DRAMBytes))
		}
	}
	if c.err != nil {
		return fmt.Errorf("invariant violated (detected at tick %d): %w", c.errTick, c.err)
	}
	return nil
}
