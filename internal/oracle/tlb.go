package oracle

import (
	"fmt"

	"rampage/internal/mem"
	"rampage/internal/xrand"
)

// refTLB is the reference translation buffer of §4.3: process-tagged
// entries, set-associative (fully associative when assoc is 0), random
// replacement of a full set. It is a plain struct scan — none of the
// production TLB's packed-key mirror or hit filter. The replacement
// RNG is the seeded SplitMix64 stream the design pins (seed ^ 0x71B),
// consumed only when an insert finds neither an existing translation
// nor an invalid slot.
type refTLB struct {
	entries   []refTLBEntry // sets*assoc, set-major
	assoc     int
	setMask   uint64
	pageShift uint
	pageBytes uint64
	rng       *xrand.RNG
}

type refTLBEntry struct {
	valid bool
	pid   mem.PID
	vpn   uint64
	frame uint64
}

func newRefTLB(entries, assoc int, pageBytes, seed uint64) (*refTLB, error) {
	if entries <= 0 || !mem.IsPow2(uint64(entries)) {
		return nil, fmt.Errorf("oracle: TLB entry count %d is not a positive power of two", entries)
	}
	if assoc < 0 || assoc > entries {
		return nil, fmt.Errorf("oracle: TLB associativity %d out of range", assoc)
	}
	if assoc == 0 {
		assoc = entries
	}
	sets := entries / assoc
	if sets*assoc != entries || !mem.IsPow2(uint64(sets)) {
		return nil, fmt.Errorf("oracle: %d TLB entries not divisible into %d-way sets", entries, assoc)
	}
	if pageBytes == 0 || !mem.IsPow2(pageBytes) {
		return nil, fmt.Errorf("oracle: TLB page size %d is not a power of two", pageBytes)
	}
	return &refTLB{
		entries:   make([]refTLBEntry, entries),
		assoc:     assoc,
		setMask:   uint64(sets - 1),
		pageShift: mem.Log2(pageBytes),
		pageBytes: pageBytes,
		rng:       xrand.New(seed ^ 0x71B),
	}, nil
}

func (t *refTLB) set(vpn uint64) []refTLBEntry {
	base := (vpn & t.setMask) * uint64(t.assoc)
	return t.entries[base : base+uint64(t.assoc)]
}

// lookup translates (pid, addr), returning the physical address on a
// hit. It keeps no statistics — the machines count hits and misses.
func (t *refTLB) lookup(pid mem.PID, addr mem.VAddr) (mem.PAddr, bool) {
	vpn := uint64(addr) >> t.pageShift
	for _, e := range t.set(vpn) {
		if e.valid && e.pid == pid && e.vpn == vpn {
			off := uint64(addr) & (t.pageBytes - 1)
			return mem.PAddr(e.frame<<t.pageShift | off), true
		}
	}
	return 0, false
}

// insert installs (pid, vpn of addr) -> frame: an existing translation
// is updated in place, an invalid slot is filled first, and only a
// full set consumes one random draw to pick the victim.
func (t *refTLB) insert(pid mem.PID, addr mem.VAddr, frame uint64) {
	vpn := uint64(addr) >> t.pageShift
	set := t.set(vpn)
	victim := -1
	for i := range set {
		if set[i].valid && set[i].pid == pid && set[i].vpn == vpn {
			set[i].frame = frame
			return
		}
		if !set[i].valid && victim < 0 {
			victim = i
		}
	}
	if victim < 0 {
		victim = t.rng.Intn(t.assoc)
	}
	set[victim] = refTLBEntry{valid: true, pid: pid, vpn: vpn, frame: frame}
}

// invalidate removes the translation for (pid, vpn of addr) if
// present, reporting whether it was (§2.3 page-replacement shootdown).
func (t *refTLB) invalidate(pid mem.PID, addr mem.VAddr) bool {
	vpn := uint64(addr) >> t.pageShift
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].pid == pid && set[i].vpn == vpn {
			set[i] = refTLBEntry{}
			return true
		}
	}
	return false
}

// countValid reports resident translations, for state summaries.
func (t *refTLB) countValid() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}
