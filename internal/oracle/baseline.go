package oracle

import (
	"fmt"

	"rampage/internal/cache"
	"rampage/internal/mem"
	"rampage/internal/metrics"
	"rampage/internal/sim"
	"rampage/internal/stats"
	"rampage/internal/synth"
)

// Baseline is the reference model of the conventional hierarchy (§4.4
// direct-mapped, §4.7 2-way): split L1 in front of a unified L2, a TLB
// translating to DRAM physical addresses, and an inverted page table in
// DRAM. It implements sim.Machine and is required to produce a report
// bit-identical to sim.Baseline's for the same configuration and trace.
type Baseline struct {
	cfg    sim.BaselineConfig
	clk    refClock
	l1i    *refCache
	l1d    *refCache
	l2     *refCache
	tlb    *refTLB
	pt     *refPageTable
	kernel *synth.Kernel

	kernelBytes uint64
	rep         stats.Report
}

// NewBaseline builds the reference machine. Configurations outside the
// paper's device envelope (victim cache, non-Rambus DRAM, pipelined
// channel) are rejected: they have no reference model.
func NewBaseline(cfg sim.BaselineConfig) (*Baseline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := checkParams(cfg.Params); err != nil {
		return nil, err
	}
	if cfg.VictimEntries > 0 {
		return nil, fmt.Errorf("oracle: the victim-cache ablation is not modeled")
	}
	if cfg.DRAMBytes == 0 {
		cfg.DRAMBytes = 64 << 20
	}
	if cfg.L1WBPenalty == 0 {
		cfg.L1WBPenalty = 12
	}
	clk, err := newRefClock(cfg.Clock)
	if err != nil {
		return nil, err
	}
	l1i, err := newRefCache(cfg.L1Bytes, cfg.L1Block, cfg.L1Assoc, false, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	l1d, err := newRefCache(cfg.L1Bytes, cfg.L1Block, cfg.L1Assoc, false, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	l2, err := newRefCache(cfg.L2Bytes, cfg.L2Block, cfg.L2Assoc, cfg.L2Policy == cache.RandomRepl, cfg.Seed+3)
	if err != nil {
		return nil, err
	}
	tb, err := newRefTLB(cfg.TLBEntries, cfg.TLBAssoc, dramPageBytes, cfg.Seed+4)
	if err != nil {
		return nil, err
	}
	// Random page placement, like the production machine: it is what
	// exposes the direct-mapped L2 to conflict misses.
	pt, err := newRefPageTable(cfg.DRAMBytes/dramPageBytes, dramPageBytes,
		synth.KernelBase+synth.KernelFixedBytes, true, cfg.Seed, "clock", 0)
	if err != nil {
		return nil, err
	}
	b := &Baseline{
		cfg:    cfg,
		clk:    clk,
		l1i:    l1i,
		l1d:    l1d,
		l2:     l2,
		tlb:    tb,
		pt:     pt,
		kernel: synth.NewKernel(cfg.Seed + 5),
	}
	// Reserve the kernel region (fixed span + the page table itself) at
	// the bottom of DRAM, identity-mapped from the kernel virtual range.
	b.kernelBytes = synth.KernelFixedBytes + pt.tableBytes()
	kpages := (b.kernelBytes + dramPageBytes - 1) / dramPageBytes
	for i := uint64(0); i < kpages; i++ {
		f, ok := pt.allocFree()
		if !ok || f != i {
			return nil, fmt.Errorf("oracle: kernel DRAM reservation failed at page %d", i)
		}
		if err := pt.mapFrame(mem.KernelPID, (uint64(synth.KernelBase)>>12)+i, f); err != nil {
			return nil, err
		}
		pt.pin(f)
	}
	name := "baseline-dm"
	if cfg.L2Assoc > 1 {
		name = fmt.Sprintf("l2-%dway", cfg.L2Assoc)
	}
	b.rep = stats.Report{Name: name, Clock: cfg.Clock, BlockBytes: cfg.L2Block}
	return b, nil
}

// dramPageBytes is the fixed DRAM page size (§2.4).
const dramPageBytes = 4096

// Report implements sim.Machine.
func (b *Baseline) Report() *stats.Report { return &b.rep }

// SetObserver implements sim.Machine. The oracle emits no observer
// events; its report is the only state the differential engine
// compares, and that report is bit-identical with or without an
// observer by construction.
func (b *Baseline) SetObserver(obs metrics.Observer) {}

// Now implements sim.Machine.
func (b *Baseline) Now() mem.Cycles { return b.rep.Cycles }

// AdvanceTo implements sim.Machine.
func (b *Baseline) AdvanceTo(t mem.Cycles) {
	if t > b.rep.Cycles {
		idle := t - b.rep.Cycles
		b.rep.IdleCycles += idle
		b.rep.Charge(stats.DRAM, idle)
	}
}

// Exec implements sim.Machine. The baseline never blocks.
func (b *Baseline) Exec(ref mem.Ref) (mem.Cycles, error) {
	return 0, b.execOne(ref, sim.ClassBench)
}

// ExecBatch implements sim.Machine as a plain Exec loop: the reference
// model has no fast path, which is the point.
func (b *Baseline) ExecBatch(refs []mem.Ref) (int, mem.Cycles, error) {
	for i := range refs {
		if err := b.execOne(refs[i], sim.ClassBench); err != nil {
			return i, 0, err
		}
	}
	return len(refs), 0, nil
}

// ExecTrace implements sim.Machine.
func (b *Baseline) ExecTrace(refs []mem.Ref, class sim.RefClass) error {
	for _, r := range refs {
		if err := b.execOne(r, class); err != nil {
			return err
		}
	}
	return nil
}

func (b *Baseline) countRef(class sim.RefClass) {
	switch class {
	case sim.ClassBench:
		b.rep.BenchRefs++
	case sim.ClassTLB:
		b.rep.OSTLBRefs++
	case sim.ClassFault:
		b.rep.OSFaultRefs++
	case sim.ClassSwitch:
		b.rep.OSSwitchRefs++
	}
}

func (b *Baseline) execOne(ref mem.Ref, class sim.RefClass) error {
	pa, err := b.translate(ref)
	if err != nil {
		return err
	}
	b.countRef(class)
	b.accessL1(ref.Kind, pa)
	return nil
}

// translate resolves a reference to a DRAM physical address through the
// TLB, replaying the TLB-miss (and first-touch table-update) handler
// traces when needed.
func (b *Baseline) translate(ref mem.Ref) (mem.PAddr, error) {
	if ref.PID == mem.KernelPID {
		off := uint64(ref.Addr) - synth.KernelBase
		if uint64(ref.Addr) < synth.KernelBase || off >= b.kernelBytes {
			return 0, fmt.Errorf("oracle: kernel address %#x outside reserved region", uint64(ref.Addr))
		}
		return mem.PAddr(off), nil
	}
	if pa, hit := b.tlb.lookup(ref.PID, ref.Addr); hit {
		b.rep.TLBHits++
		return pa, nil
	}
	b.rep.TLBMisses++
	vpn := uint64(ref.Addr) >> 12
	frame, probes, found := b.pt.lookup(ref.PID, vpn, nil)
	var updates []uint64
	if !found {
		// First touch: infinite DRAM hands out a fresh frame; the
		// handler updates the table (a compulsory, disk-free "fault").
		f, ok := b.pt.allocFree()
		if !ok {
			return 0, fmt.Errorf("oracle: DRAM exhausted; raise DRAMBytes above the workload footprint")
		}
		if err := b.pt.mapFrame(ref.PID, vpn, f); err != nil {
			return 0, err
		}
		frame = f
		updates = append(updates, b.pt.entryAddr(f))
	}
	b.tlb.insert(ref.PID, ref.Addr, frame)
	// Interleave the page-lookup software trace (§4.3).
	trc := b.kernel.AppendTLBMiss(nil, probes)
	start := b.rep.Cycles
	if err := b.ExecTrace(trc, sim.ClassTLB); err != nil {
		return 0, err
	}
	b.rep.TLBHandlerCycles += b.rep.Cycles - start
	if len(updates) > 0 {
		trc = b.kernel.AppendPageFault(nil, nil, updates)
		start = b.rep.Cycles
		if err := b.ExecTrace(trc, sim.ClassFault); err != nil {
			return 0, err
		}
		b.rep.FaultHandlerCycles += b.rep.Cycles - start
	}
	off := uint64(ref.Addr) & (dramPageBytes - 1)
	return mem.PAddr(frame<<12 | off), nil
}

// l1side returns the L1 cache a reference kind uses.
func (b *Baseline) l1side(kind mem.RefKind) *refCache {
	if kind.IsData() {
		return b.l1d
	}
	return b.l1i
}

// accessL1 runs the reference through the split L1 and, on a miss, the
// L2 and DRAM levels, charging time per §4.3–4.4.
func (b *Baseline) accessL1(kind mem.RefKind, pa mem.PAddr) {
	if kind == mem.IFetch {
		// Only instruction fetches add to run time on a hit (§4.3).
		b.rep.Charge(stats.L1I, 1)
	}
	res := b.l1side(kind).access(pa, kind == mem.Store)
	if res.hit {
		return
	}
	if kind == mem.IFetch {
		b.rep.L1IMisses++
	} else {
		b.rep.L1DMisses++
	}
	b.rep.Charge(stats.L2, b.cfg.L1MissPenalty)
	b.accessL2(pa)
	if res.evictedDirty {
		// Write the dirty L1 block back to L2 (write-back, §4.3).
		b.rep.Charge(stats.L2, b.cfg.L1WBPenalty)
		b.writebackToL2(res.writebackAddr)
	}
}

// accessL2 looks up the block containing pa, fetching it from DRAM on a
// miss and maintaining inclusion with L1.
func (b *Baseline) accessL2(pa mem.PAddr) {
	res := b.l2.access(pa, false)
	if res.hit {
		return
	}
	b.rep.L2Misses++
	b.dramTransfer()
	b.handleL2Eviction(res)
}

// dramTransfer charges one real L2-block transfer on the Rambus channel
// and accounts it (fills and write-backs alike).
func (b *Baseline) dramTransfer() {
	b.rep.DRAMTransfers++
	b.rep.DRAMBytes += b.cfg.L2Block
	b.rep.Charge(stats.DRAM, b.clk.transferCycles(b.cfg.L2Block))
}

// handleL2Eviction maintains inclusion (purging the departing block
// from L1) and charges the DRAM write-back for dirty departures.
func (b *Baseline) handleL2Eviction(res refCacheResult) {
	if !res.evicted {
		return
	}
	dirtyL1 := b.purgeL1(res.evictedAddr, b.cfg.L2Block)
	if res.evictedDirty || dirtyL1 > 0 {
		b.rep.Writebacks++
		b.dramTransfer()
	}
}

// purgeL1 invalidates [addr, addr+size) from both L1 sides, charging
// one cycle per present block and the write-back penalty for dirty data
// blocks, exactly as the production inclusion purge does.
func (b *Baseline) purgeL1(addr mem.PAddr, size uint64) (dirtyBlocks int) {
	b.l1i.invalidateRange(addr, size, func(block mem.PAddr, dirty bool) {
		b.rep.Charge(stats.L1I, 1)
	})
	b.l1d.invalidateRange(addr, size, func(block mem.PAddr, dirty bool) {
		b.rep.Charge(stats.L1D, 1)
		if dirty {
			b.rep.Charge(stats.L2, b.cfg.L1WBPenalty)
			dirtyBlocks++
		}
	})
	return dirtyBlocks
}

// writebackToL2 lands a dirty L1 block in L2, allocating it again if
// the very fill that evicted it displaced its parent block.
func (b *Baseline) writebackToL2(addr mem.PAddr) {
	res := b.l2.access(addr, true)
	if res.hit {
		return
	}
	b.rep.L2Misses++
	b.dramTransfer()
	b.handleL2Eviction(res)
}

// StateSummary describes the machine's internal state for divergence
// reports.
func (b *Baseline) StateSummary() string {
	l1iv, l1id := b.l1i.countValid()
	l1dv, l1dd := b.l1d.countValid()
	l2v, l2d := b.l2.countValid()
	ptv, ptp := b.pt.countValid()
	return fmt.Sprintf("l1i %d lines (%d dirty), l1d %d lines (%d dirty), l2 %d lines (%d dirty), tlb %d entries, pt %d mapped (%d pinned), %s",
		l1iv, l1id, l1dv, l1dd, l2v, l2d, b.tlb.countValid(), ptv, ptp, b.pt.pol.stateSummary())
}
