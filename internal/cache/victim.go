package cache

import "rampage/internal/mem"

// VictimCache pairs a main cache with a small fully-associative victim
// buffer holding recently evicted blocks (Jouppi's victim cache, cited
// in §3.2 as a hardware alternative for reducing conflict misses
// without lengthening hits). On a main-cache miss that hits in the
// victim buffer, the block is swapped back; the simulator charges a
// reduced penalty for such "victim hits".
type VictimCache struct {
	main   *Cache
	victim *Cache
	stats  VictimStats
}

// VictimStats counts victim-buffer events.
type VictimStats struct {
	// VictimHits are main-cache misses satisfied by the victim buffer.
	VictimHits uint64
}

// NewVictim wraps main with a victim buffer of the given number of
// entries (each one main-cache block).
func NewVictim(main *Cache, entries int) (*VictimCache, error) {
	vcfg := Config{
		Name:       main.cfg.Name + "-victim",
		SizeBytes:  main.cfg.BlockBytes * uint64(entries),
		BlockBytes: main.cfg.BlockBytes,
		Assoc:      entries,
		Policy:     LRU,
		Seed:       main.cfg.Seed + 1,
	}
	v, err := New(vcfg)
	if err != nil {
		return nil, err
	}
	return &VictimCache{main: main, victim: v}, nil
}

// VictimResult extends Result with the victim-hit distinction.
type VictimResult struct {
	Result
	// VictimHit is true when the main cache missed but the victim
	// buffer supplied the block (cheap recovery).
	VictimHit bool
}

// Access performs a main-cache access with victim-buffer backup.
// Blocks evicted from the main cache move to the victim buffer; blocks
// evicted dirty from the victim buffer surface as write-backs.
func (vc *VictimCache) Access(addr mem.PAddr, write bool) VictimResult {
	res := vc.main.Access(addr, write)
	out := VictimResult{Result: res}
	if res.Hit {
		return out
	}
	// Main miss: does the victim buffer hold it?
	blk := vc.main.BlockAddr(addr)
	if present, dirty := vc.victim.Invalidate(blk); present {
		vc.stats.VictimHits++
		out.VictimHit = true
		// The swapped-back block keeps its dirtiness.
		if dirty && !write {
			vc.redirty(blk)
		}
	}
	// The displaced main-cache block (if any) enters the victim buffer
	// instead of being written back immediately.
	if res.Evicted {
		vres := vc.victim.Access(res.EvictedAddr, res.EvictedDirty)
		// Whatever the victim buffer displaces is the real write-back.
		out.EvictedDirty = vres.EvictedDirty
		out.WritebackAddr = vres.WritebackAddr
		if !vres.EvictedDirty {
			out.EvictedDirty = false
			out.WritebackAddr = 0
		}
	}
	return out
}

// redirty marks the freshly filled block dirty (used when a dirty block
// is recovered from the victim buffer by a read).
func (vc *VictimCache) redirty(blk mem.PAddr) {
	set, tag := vc.main.index(blk)
	base := set * uint64(vc.main.assoc)
	for i := base; i < base+uint64(vc.main.assoc); i++ {
		if vc.main.valid[i] && vc.main.tags[i] == tag {
			vc.main.dirty[i] = true
			return
		}
	}
}

// Stats returns the victim-buffer counters.
func (vc *VictimCache) Stats() VictimStats { return vc.stats }

// Main returns the wrapped main cache.
func (vc *VictimCache) Main() *Cache { return vc.main }
