package cache

import (
	"testing"

	"rampage/internal/mem"
	"rampage/internal/xrand"
)

// refCache is an obviously-correct reference model: per set, a slice
// of (tag, dirty) entries kept in LRU order (front = most recent).
// The production cache must agree with it decision for decision.
type refCache struct {
	sets       [][]refLine
	assoc      int
	blockBytes uint64
	setCount   uint64
}

type refLine struct {
	tag   uint64
	dirty bool
}

func newRefCache(cfg Config) *refCache {
	sets := cfg.Sets()
	return &refCache{
		sets:       make([][]refLine, sets),
		assoc:      cfg.Assoc,
		blockBytes: cfg.BlockBytes,
		setCount:   sets,
	}
}

func (rc *refCache) index(addr mem.PAddr) (uint64, uint64) {
	block := uint64(addr) / rc.blockBytes
	return block % rc.setCount, block / rc.setCount
}

// access mirrors Cache.Access for the LRU policy.
func (rc *refCache) access(addr mem.PAddr, write bool) (hit, evicted, evictedDirty bool, evictedAddr mem.PAddr) {
	set, tag := rc.index(addr)
	lines := rc.sets[set]
	for i, l := range lines {
		if l.tag == tag {
			// Move to front, apply write.
			l.dirty = l.dirty || write
			rc.sets[set] = append([]refLine{l}, append(append([]refLine{}, lines[:i]...), lines[i+1:]...)...)
			return true, false, false, 0
		}
	}
	newLine := refLine{tag: tag, dirty: write}
	if len(lines) < rc.assoc {
		rc.sets[set] = append([]refLine{newLine}, lines...)
		return false, false, false, 0
	}
	victim := lines[len(lines)-1]
	rc.sets[set] = append([]refLine{newLine}, lines[:len(lines)-1]...)
	evictedAddr = mem.PAddr((victim.tag*rc.setCount + set) * rc.blockBytes)
	return false, true, victim.dirty, evictedAddr
}

func (rc *refCache) probe(addr mem.PAddr) bool {
	set, tag := rc.index(addr)
	for _, l := range rc.sets[set] {
		if l.tag == tag {
			return true
		}
	}
	return false
}

// TestCacheAgreesWithReferenceModel drives the production cache and
// the reference model with the same pseudo-random stream and demands
// bit-for-bit agreement on hits, evictions, write-backs and final
// contents, across several shapes.
func TestCacheAgreesWithReferenceModel(t *testing.T) {
	shapes := []Config{
		{Name: "dm", SizeBytes: 4 << 10, BlockBytes: 32, Assoc: 1},
		{Name: "2way", SizeBytes: 8 << 10, BlockBytes: 64, Assoc: 2, Policy: LRU},
		{Name: "4way", SizeBytes: 16 << 10, BlockBytes: 128, Assoc: 4, Policy: LRU},
		{Name: "fa", SizeBytes: 2 << 10, BlockBytes: 32, Assoc: 64, Policy: LRU},
	}
	for _, cfg := range shapes {
		t.Run(cfg.Name, func(t *testing.T) {
			c := MustNew(cfg)
			ref := newRefCache(cfg)
			rng := xrand.New(99)
			// Address space 4x the cache: plenty of conflicts.
			span := cfg.SizeBytes * 4
			for i := 0; i < 50000; i++ {
				addr := mem.PAddr(rng.Uintn(span))
				write := rng.Chance(0.3)
				got := c.Access(addr, write)
				hit, evicted, edirty, eaddr := ref.access(addr, write)
				if got.Hit != hit {
					t.Fatalf("op %d addr %#x: hit=%v, ref=%v", i, addr, got.Hit, hit)
				}
				if got.Evicted != evicted {
					t.Fatalf("op %d addr %#x: evicted=%v, ref=%v", i, addr, got.Evicted, evicted)
				}
				if evicted {
					if got.EvictedDirty != edirty {
						t.Fatalf("op %d: evicted dirty=%v, ref=%v", i, got.EvictedDirty, edirty)
					}
					if c.BlockAddr(got.EvictedAddr) != eaddr {
						t.Fatalf("op %d: evicted addr %#x, ref %#x", i, got.EvictedAddr, eaddr)
					}
				}
			}
			// Final contents agree.
			for a := mem.PAddr(0); a < mem.PAddr(span); a += mem.PAddr(cfg.BlockBytes) {
				if c.Probe(a) != ref.probe(a) {
					t.Fatalf("final contents diverge at %#x", a)
				}
			}
		})
	}
}
