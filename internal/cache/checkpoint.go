package cache

import "rampage/internal/checkpoint"

// EncodeState serializes the cache's complete mutable state: the tag
// store columns, the LRU clock, the replacement RNG and the event
// counters. Configuration is not serialized — state is decoded in
// place into an identically configured cache.
//
// Direct-mapped caches canonicalize the LRU clock and per-line use
// stamps to zero: victim choice never consults them when assoc == 1,
// and the fused DMHot fast path legitimately skips updating them, so
// their live values depend on which execution path ran. Serializing
// them would make checkpoint bytes differ between the batched and
// per-reference paths even though the machines are behaviorally
// identical.
func (c *Cache) EncodeState(e *checkpoint.Enc) {
	e.Marker(checkpoint.MarkCache)
	e.U64s(c.tags)
	e.Bools(c.valid)
	e.Bools(c.dirty)
	if c.assoc == 1 {
		e.U64s(make([]uint64, len(c.used)))
		e.U64(0)
	} else {
		e.U64s(c.used)
		e.U64(c.clock)
	}
	e.U64(c.rng.State())
	e.U64(c.stats.Hits)
	e.U64(c.stats.Misses)
	e.U64(c.stats.Evictions)
	e.U64(c.stats.Writebacks)
}

// DecodeState restores state captured by EncodeState into the live
// columns. Geometry mismatches are decode errors.
func (c *Cache) DecodeState(d *checkpoint.Dec) {
	d.Marker(checkpoint.MarkCache)
	d.U64sInto(c.tags)
	d.BoolsInto(c.valid)
	d.BoolsInto(c.dirty)
	d.U64sInto(c.used)
	c.clock = d.U64()
	c.rng.SetState(d.U64())
	c.stats.Hits = d.U64()
	c.stats.Misses = d.U64()
	c.stats.Evictions = d.U64()
	c.stats.Writebacks = d.U64()
}

// EncodeState serializes the victim cache: the inner fully-associative
// buffer plus the victim-hit counter. The main cache is serialized by
// its owner.
func (vc *VictimCache) EncodeState(e *checkpoint.Enc) {
	e.Marker(checkpoint.MarkVictim)
	vc.victim.EncodeState(e)
	e.U64(vc.stats.VictimHits)
}

// DecodeState restores state captured by EncodeState.
func (vc *VictimCache) DecodeState(d *checkpoint.Dec) {
	d.Marker(checkpoint.MarkVictim)
	vc.victim.DecodeState(d)
	vc.stats.VictimHits = d.U64()
}
