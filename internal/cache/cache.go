// Package cache implements the hardware cache models of the simulated
// systems: the split direct-mapped L1 caches common to every
// configuration (§4.3), the baseline direct-mapped L2 (§4.4) and the
// 2-way set-associative L2 with random replacement (§4.7). A generic
// N-way set-associative write-back, write-allocate cache covers all of
// them; a small fully-associative victim cache (the §3.2 alternative)
// is provided as an extension for ablation experiments.
//
// The cache stores no data — it is a tag store. Timing lives in the
// simulator; this package answers only "hit or miss, and what was
// displaced". The tag store is columnar (parallel tags/valid/dirty/
// used arrays rather than an array of line structs) so the simulator's
// fused direct-mapped fast path (see DMHot) resolves a hit with a
// single tag-word load.
package cache

import (
	"fmt"

	"rampage/internal/mem"
	"rampage/internal/xrand"
)

// Policy selects the replacement policy within a set.
type Policy uint8

const (
	// LRU replaces the least-recently-used way.
	LRU Policy = iota
	// RandomRepl replaces a uniformly random way, as in the paper's
	// 2-way associative L2 (§4.7).
	RandomRepl
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case RandomRepl:
		return "random"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Config describes a cache. Direct-mapped is Assoc == 1;
// fully-associative is Assoc == number of blocks.
type Config struct {
	// Name labels the cache in reports ("L1i", "L2", ...).
	Name string
	// SizeBytes is the total capacity; BlockBytes the line size. Both
	// must be powers of two with SizeBytes >= BlockBytes*Assoc.
	SizeBytes  uint64
	BlockBytes uint64
	// Assoc is the number of ways per set (>= 1).
	Assoc int
	// Policy selects replacement within a set; direct-mapped caches
	// ignore it.
	Policy Policy
	// Seed feeds the deterministic RNG for RandomRepl.
	Seed uint64
}

// Validate checks the configuration for structural errors.
func (c Config) Validate() error {
	if c.BlockBytes == 0 || !mem.IsPow2(c.BlockBytes) {
		return fmt.Errorf("cache %s: block size %d is not a power of two", c.Name, c.BlockBytes)
	}
	if c.SizeBytes == 0 || !mem.IsPow2(c.SizeBytes) {
		return fmt.Errorf("cache %s: size %d is not a power of two", c.Name, c.SizeBytes)
	}
	if c.Assoc < 1 {
		return fmt.Errorf("cache %s: associativity %d < 1", c.Name, c.Assoc)
	}
	blocks := c.SizeBytes / c.BlockBytes
	if blocks == 0 || uint64(c.Assoc) > blocks {
		return fmt.Errorf("cache %s: %d ways exceed %d blocks", c.Name, c.Assoc, blocks)
	}
	sets := blocks / uint64(c.Assoc)
	if !mem.IsPow2(sets) {
		return fmt.Errorf("cache %s: set count %d is not a power of two", c.Name, sets)
	}
	return nil
}

// Sets returns the number of sets the configuration implies.
func (c Config) Sets() uint64 { return c.SizeBytes / c.BlockBytes / uint64(c.Assoc) }

// TagBits estimates the per-line address-tag width for a 32-bit
// physical address, used to size the RAMpage SRAM bonus (§4.5: the
// SRAM main memory gets the capacity a cache would spend on tags).
func (c Config) TagBits() uint {
	const physBits = 32
	return physBits - mem.Log2(c.Sets()) - mem.Log2(c.BlockBytes)
}

// Stats counts cache events since construction.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64 // valid lines displaced by fills
	Writebacks uint64 // dirty lines displaced or invalidated
}

// MissRate returns misses / (hits+misses), or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

// Result reports the outcome of one access.
type Result struct {
	// Hit is true when the block was present.
	Hit bool
	// Evicted is true when a valid block was displaced to make room.
	Evicted bool
	// WritebackAddr is the block-aligned address of the displaced block
	// when it was dirty; valid only when EvictedDirty.
	WritebackAddr mem.PAddr
	// EvictedAddr is the block-aligned address of any displaced block;
	// valid only when Evicted. The simulator uses it to maintain
	// inclusion (an L2 eviction invalidates the block in L1).
	EvictedAddr  mem.PAddr
	EvictedDirty bool
}

// TagInvalid fills the tag column of invalid lines so the direct-
// mapped fast path (DMHot) can test presence with one comparison. The
// valid column stays authoritative: a real block whose tag happens to
// equal TagInvalid (only possible when tag+set+block bits fill all 64
// address bits) is still tracked exactly by the full paths, and the
// fast path explicitly rejects sentinel-valued probe tags.
const TagInvalid = ^uint64(0)

// Cache is an N-way set-associative tag store. It is not safe for
// concurrent use. Lines are stored columnar, set-major within each
// column: way w of set s is index s*assoc+w.
type Cache struct {
	cfg        Config
	tags       []uint64 // TagInvalid when the line is invalid
	valid      []bool
	dirty      []bool
	used       []uint64 // LRU timestamps
	assoc      int
	setMask    uint64
	setShift   uint // log2(set count), for tag extraction
	blockShift uint
	clock      uint64
	rng        *xrand.RNG
	stats      Stats
}

// New builds a cache from a validated configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	lines := sets * uint64(cfg.Assoc)
	tags := make([]uint64, lines)
	for i := range tags {
		tags[i] = TagInvalid
	}
	return &Cache{
		cfg:        cfg,
		tags:       tags,
		valid:      make([]bool, lines),
		dirty:      make([]bool, lines),
		used:       make([]uint64, lines),
		assoc:      cfg.Assoc,
		setMask:    sets - 1,
		setShift:   mem.Log2(sets),
		blockShift: mem.Log2(cfg.BlockBytes),
		rng:        xrand.New(cfg.Seed ^ 0xCAC4E),
	}, nil
}

// MustNew is New for configurations known to be valid; it panics on
// error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// BlockAddr returns the block-aligned address containing addr.
func (c *Cache) BlockAddr(addr mem.PAddr) mem.PAddr {
	return addr &^ mem.PAddr(c.cfg.BlockBytes-1)
}

// DMHot is a flattened view of a direct-mapped cache for the
// simulator's fused TLB→L1 fast path. The slices alias the cache's
// live columns — never reallocated after New — so a view captured once
// stays current. A fast-path probe is
//
//	block := pa >> BlockShift
//	set, tag := block&SetMask, block>>SetShift
//	hit := Tags[set] == tag && tag != TagInvalid
//
// On a hit the caller sets Dirty[set] for a write and accumulates
// Stats.Hits batch-locally; replacement clock/LRU state is skipped,
// which is invisible for a direct-mapped cache (the victim choice
// never consults it). On a miss — or a sentinel-valued probe tag — the
// caller falls back to Hit/Access, which handle every case exactly.
type DMHot struct {
	Tags       []uint64
	Dirty      []bool
	SetMask    uint64
	SetShift   uint
	BlockShift uint
	Stats      *Stats
}

// DirectHot returns the fast-path view, or ok == false when the cache
// is not direct-mapped.
func (c *Cache) DirectHot() (DMHot, bool) {
	if c.assoc != 1 {
		return DMHot{}, false
	}
	return DMHot{
		Tags:       c.tags,
		Dirty:      c.dirty,
		SetMask:    c.setMask,
		SetShift:   c.setShift,
		BlockShift: c.blockShift,
		Stats:      &c.stats,
	}, true
}

func (c *Cache) index(addr mem.PAddr) (set uint64, tag uint64) {
	block := uint64(addr) >> c.blockShift
	return block & c.setMask, block >> c.setShift
}

// Access looks up addr, allocating the block on a miss (write-allocate)
// and marking it dirty on a write. The returned Result describes any
// displacement so the caller can time write-backs and maintain
// inclusion with upper levels.
func (c *Cache) Access(addr mem.PAddr, write bool) Result {
	set, tag := c.index(addr)
	base := set * uint64(c.assoc)
	c.clock++
	for i := base; i < base+uint64(c.assoc); i++ {
		if c.valid[i] && c.tags[i] == tag {
			c.stats.Hits++
			c.used[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			return Result{Hit: true}
		}
	}
	c.stats.Misses++
	victim := base + uint64(c.pickVictim(base))
	res := Result{}
	if c.valid[victim] {
		c.stats.Evictions++
		res.Evicted = true
		res.EvictedAddr = c.rebuild(set, c.tags[victim])
		if c.dirty[victim] {
			c.stats.Writebacks++
			res.EvictedDirty = true
			res.WritebackAddr = res.EvictedAddr
		}
	}
	c.valid[victim] = true
	c.dirty[victim] = write
	c.tags[victim] = tag
	c.used[victim] = c.clock
	return res
}

// Hit is the hit half of Access, split out for the simulator's batched
// fast path. When addr's block is present it updates clock, LRU and
// dirty state exactly as Access would and reports true. When absent it
// touches nothing — the caller completes the miss with Access, and the
// combined state and statistics are identical to a single Access call.
func (c *Cache) Hit(addr mem.PAddr, write bool) bool {
	block := uint64(addr) >> c.blockShift
	set, tag := block&c.setMask, block>>c.setShift
	if c.assoc == 1 { // direct-mapped: one candidate line
		if c.valid[set] && c.tags[set] == tag {
			c.clock++
			c.stats.Hits++
			c.used[set] = c.clock
			if write {
				c.dirty[set] = true
			}
			return true
		}
		return false
	}
	base := set * uint64(c.assoc)
	for i := base; i < base+uint64(c.assoc); i++ {
		if c.valid[i] && c.tags[i] == tag {
			c.clock++
			c.stats.Hits++
			c.used[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			return true
		}
	}
	return false
}

// Probe reports whether addr is present without updating replacement
// state or statistics.
func (c *Cache) Probe(addr mem.PAddr) bool {
	set, tag := c.index(addr)
	base := set * uint64(c.assoc)
	for i := base; i < base+uint64(c.assoc); i++ {
		if c.valid[i] && c.tags[i] == tag {
			return true
		}
	}
	return false
}

// pickVictim chooses the way to replace in a full set (given the set's
// base line index), or the first invalid way if one exists.
func (c *Cache) pickVictim(base uint64) int {
	for w := 0; w < c.assoc; w++ {
		if !c.valid[base+uint64(w)] {
			return w
		}
	}
	if c.assoc == 1 {
		return 0
	}
	switch c.cfg.Policy {
	case RandomRepl:
		return c.rng.Intn(c.assoc)
	default: // LRU
		best := 0
		for w := 1; w < c.assoc; w++ {
			if c.used[base+uint64(w)] < c.used[base+uint64(best)] {
				best = w
			}
		}
		return best
	}
}

// rebuild reconstructs a block-aligned address from its set and tag.
func (c *Cache) rebuild(set, tag uint64) mem.PAddr {
	return mem.PAddr((tag<<c.setShift | set) << c.blockShift)
}

// clearLine invalidates one line, restoring the tag sentinel the
// direct-mapped fast path relies on.
func (c *Cache) clearLine(i uint64) {
	c.valid[i] = false
	c.dirty[i] = false
	c.tags[i] = TagInvalid
	c.used[i] = 0
}

// ForEachValid invokes fn for every resident block with its
// block-aligned address and dirtiness, without touching replacement
// state or statistics. The invariant checker uses it to verify
// inclusion and residency properties.
func (c *Cache) ForEachValid(fn func(addr mem.PAddr, dirty bool)) {
	sets := c.setMask + 1
	for set := uint64(0); set < sets; set++ {
		base := set * uint64(c.assoc)
		for i := base; i < base+uint64(c.assoc); i++ {
			if c.valid[i] {
				fn(c.rebuild(set, c.tags[i]), c.dirty[i])
			}
		}
	}
}

// Invalidate removes the block containing addr if present, returning
// whether it was present and whether it was dirty (the caller times the
// write-back). Inclusion maintenance and RAMpage page replacement use
// this.
func (c *Cache) Invalidate(addr mem.PAddr) (present, dirty bool) {
	set, tag := c.index(addr)
	base := set * uint64(c.assoc)
	for i := base; i < base+uint64(c.assoc); i++ {
		if c.valid[i] && c.tags[i] == tag {
			dirty = c.dirty[i]
			if dirty {
				c.stats.Writebacks++
			}
			c.clearLine(i)
			return true, dirty
		}
	}
	return false, false
}

// InvalidateRange removes every block overlapping [addr, addr+size),
// invoking fn for each block that was present (with its dirtiness).
// RAMpage uses it to purge L1 when an SRAM page is replaced.
func (c *Cache) InvalidateRange(addr mem.PAddr, size uint64, fn func(block mem.PAddr, dirty bool)) {
	start := c.BlockAddr(addr)
	end := uint64(addr) + size
	for b := uint64(start); b < end; b += c.cfg.BlockBytes {
		if present, dirty := c.Invalidate(mem.PAddr(b)); present && fn != nil {
			fn(mem.PAddr(b), dirty)
		}
	}
}

// Flush invalidates the entire cache, invoking fn for each dirty block.
func (c *Cache) Flush(fn func(block mem.PAddr, dirty bool)) {
	sets := c.setMask + 1
	for set := uint64(0); set < sets; set++ {
		base := set * uint64(c.assoc)
		for i := base; i < base+uint64(c.assoc); i++ {
			if c.valid[i] {
				addr := c.rebuild(set, c.tags[i])
				dirty := c.dirty[i]
				if dirty {
					c.stats.Writebacks++
				}
				c.clearLine(i)
				if fn != nil {
					fn(addr, dirty)
				}
			}
		}
	}
}
