package cache

import (
	"testing"
	"testing/quick"

	"rampage/internal/mem"
	"rampage/internal/xrand"
)

func dm16k() *Cache {
	// The paper's L1 shape: 16KB direct-mapped, 32B blocks.
	return MustNew(Config{Name: "L1", SizeBytes: 16 << 10, BlockBytes: 32, Assoc: 1})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "a", SizeBytes: 16 << 10, BlockBytes: 0, Assoc: 1},
		{Name: "b", SizeBytes: 16 << 10, BlockBytes: 33, Assoc: 1},
		{Name: "c", SizeBytes: 0, BlockBytes: 32, Assoc: 1},
		{Name: "d", SizeBytes: 12 << 10, BlockBytes: 32, Assoc: 1},
		{Name: "e", SizeBytes: 16 << 10, BlockBytes: 32, Assoc: 0},
		{Name: "f", SizeBytes: 64, BlockBytes: 32, Assoc: 4}, // ways > blocks
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %s validated, want error", cfg.Name)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%s) succeeded, want error", cfg.Name)
		}
	}
	good := Config{Name: "g", SizeBytes: 4 << 20, BlockBytes: 128, Assoc: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if got, want := good.Sets(), uint64(16384); got != want {
		t.Errorf("Sets = %d, want %d", got, want)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad config did not panic")
		}
	}()
	MustNew(Config{})
}

func TestBasicHitMiss(t *testing.T) {
	c := dm16k()
	if res := c.Access(0x1000, false); res.Hit {
		t.Error("cold access hit")
	}
	if res := c.Access(0x1000, false); !res.Hit {
		t.Error("second access missed")
	}
	// Same block, different offset.
	if res := c.Access(0x101F, false); !res.Hit {
		t.Error("same-block access missed")
	}
	// Next block.
	if res := c.Access(0x1020, false); res.Hit {
		t.Error("adjacent-block access hit")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats = %+v, want 2 hits 2 misses", s)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := dm16k()
	a := mem.PAddr(0x0000)
	b := a + 16<<10 // same index, different tag
	c.Access(a, false)
	if res := c.Access(b, false); res.Hit {
		t.Fatal("conflicting block hit")
	} else if !res.Evicted || res.EvictedAddr != a {
		t.Errorf("eviction = %+v, want evicted addr %#x", res, a)
	}
	if res := c.Access(a, false); res.Hit {
		t.Error("evicted block still present")
	}
}

func TestTwoWayResolvesConflict(t *testing.T) {
	c := MustNew(Config{Name: "L2", SizeBytes: 16 << 10, BlockBytes: 32, Assoc: 2, Policy: LRU})
	a := mem.PAddr(0x0000)
	b := a + 8<<10 // same set in a 2-way 16KB cache
	c.Access(a, false)
	c.Access(b, false)
	if !c.Access(a, false).Hit || !c.Access(b, false).Hit {
		t.Error("2-way cache did not hold both conflicting blocks")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := MustNew(Config{Name: "c", SizeBytes: 128, BlockBytes: 32, Assoc: 4, Policy: LRU})
	// One set of 4 ways. Fill, touch a to make it MRU, then overflow.
	addrs := []mem.PAddr{0, 128, 256, 384}
	for _, a := range addrs {
		c.Access(a, false)
	}
	c.Access(0, false) // 0 is now MRU; LRU is 128
	res := c.Access(512, false)
	if !res.Evicted || res.EvictedAddr != 128 {
		t.Errorf("LRU evicted %#x, want 128", res.EvictedAddr)
	}
}

func TestRandomReplacementDeterministic(t *testing.T) {
	mk := func() []mem.PAddr {
		c := MustNew(Config{Name: "c", SizeBytes: 256, BlockBytes: 32, Assoc: 8, Policy: RandomRepl, Seed: 7})
		var evicted []mem.PAddr
		for i := 0; i < 64; i++ {
			res := c.Access(mem.PAddr(i*256), false)
			if res.Evicted {
				evicted = append(evicted, res.EvictedAddr)
			}
		}
		return evicted
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("eviction counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random replacement not reproducible from seed")
		}
	}
	if len(a) < 40 {
		t.Errorf("only %d evictions out of 64 accesses to a full set", len(a))
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := dm16k()
	a := mem.PAddr(0x40)
	b := a + 16<<10
	c.Access(a, true) // dirty
	res := c.Access(b, false)
	if !res.EvictedDirty || res.WritebackAddr != a {
		t.Errorf("dirty eviction = %+v, want writeback of %#x", res, a)
	}
	// Clean eviction produces no write-back.
	res = c.Access(a, false)
	if res.EvictedDirty {
		t.Error("clean block evicted dirty")
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestWriteHitDirties(t *testing.T) {
	c := dm16k()
	a := mem.PAddr(0x40)
	c.Access(a, false) // clean fill
	c.Access(a, true)  // write hit dirties
	if _, dirty := c.Invalidate(a); !dirty {
		t.Error("block not dirty after write hit")
	}
}

func TestProbeNoSideEffects(t *testing.T) {
	c := dm16k()
	if c.Probe(0x40) {
		t.Error("probe hit in empty cache")
	}
	before := c.Stats()
	c.Probe(0x40)
	if c.Stats() != before {
		t.Error("probe changed statistics")
	}
	c.Access(0x40, false)
	if !c.Probe(0x40) {
		t.Error("probe missed present block")
	}
}

func TestInvalidate(t *testing.T) {
	c := dm16k()
	c.Access(0x40, true)
	present, dirty := c.Invalidate(0x40)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v, %v), want (true, true)", present, dirty)
	}
	if c.Probe(0x40) {
		t.Error("block present after invalidate")
	}
	present, _ = c.Invalidate(0x40)
	if present {
		t.Error("double invalidate reported present")
	}
}

func TestInvalidateRange(t *testing.T) {
	c := dm16k()
	// Fill a 4KB page worth of blocks, some dirty.
	page := mem.PAddr(0x2000)
	for i := 0; i < 128; i++ {
		c.Access(page+mem.PAddr(i*32), i%4 == 0)
	}
	var n, dirty int
	c.InvalidateRange(page, 4096, func(b mem.PAddr, d bool) {
		n++
		if d {
			dirty++
		}
		if b < page || b >= page+4096 {
			t.Errorf("invalidated block %#x outside page", b)
		}
	})
	if n != 128 {
		t.Errorf("invalidated %d blocks, want 128", n)
	}
	if dirty != 32 {
		t.Errorf("found %d dirty blocks, want 32", dirty)
	}
	for i := 0; i < 128; i++ {
		if c.Probe(page + mem.PAddr(i*32)) {
			t.Fatalf("block %d survived InvalidateRange", i)
		}
	}
}

func TestFlush(t *testing.T) {
	c := dm16k()
	c.Access(0x40, true)
	c.Access(0x80, false)
	var dirtyBlocks, cleanBlocks int
	c.Flush(func(b mem.PAddr, d bool) {
		if d {
			dirtyBlocks++
		} else {
			cleanBlocks++
		}
	})
	if dirtyBlocks != 1 || cleanBlocks != 1 {
		t.Errorf("flush found %d dirty, %d clean; want 1, 1", dirtyBlocks, cleanBlocks)
	}
	if c.Probe(0x40) || c.Probe(0x80) {
		t.Error("blocks survived flush")
	}
}

func TestEvictedAddressRoundTrip(t *testing.T) {
	// Property: the evicted address reported on a conflict is the
	// block-aligned address of the earlier access.
	f := func(blockSel uint8, tagA, tagB uint16) bool {
		c := MustNew(Config{Name: "c", SizeBytes: 8 << 10, BlockBytes: 64, Assoc: 1})
		if tagA == tagB {
			return true
		}
		set := uint64(blockSel) % c.Config().Sets()
		a := mem.PAddr((uint64(tagA)*c.Config().Sets() + set) * 64)
		b := mem.PAddr((uint64(tagB)*c.Config().Sets() + set) * 64)
		c.Access(a, false)
		res := c.Access(b, false)
		return res.Evicted && res.EvictedAddr == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessThenProbeProperty(t *testing.T) {
	c := MustNew(Config{Name: "c", SizeBytes: 4 << 10, BlockBytes: 32, Assoc: 2})
	f := func(addr uint32) bool {
		a := mem.PAddr(addr)
		c.Access(a, false)
		return c.Probe(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFullyAssociative(t *testing.T) {
	// 64 entries, fully associative: like the paper's TLB shape.
	c := MustNew(Config{Name: "fa", SizeBytes: 64 * 32, BlockBytes: 32, Assoc: 64, Policy: LRU})
	if c.Config().Sets() != 1 {
		t.Fatalf("Sets = %d, want 1", c.Config().Sets())
	}
	// Any 64 distinct blocks coexist regardless of address bits.
	for i := 0; i < 64; i++ {
		c.Access(mem.PAddr(i)*1<<20, false)
	}
	for i := 0; i < 64; i++ {
		if !c.Probe(mem.PAddr(i) * 1 << 20) {
			t.Fatalf("block %d evicted from fully-associative cache before capacity", i)
		}
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty MissRate != 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("MissRate = %g, want 0.25", s.MissRate())
	}
}

func TestTagBits(t *testing.T) {
	cfg := Config{Name: "L2", SizeBytes: 4 << 20, BlockBytes: 128, Assoc: 1}
	// 32-bit address, 15 index bits (32768 sets), 7 offset bits -> 10.
	if got := cfg.TagBits(); got != 10 {
		t.Errorf("TagBits = %d, want 10", got)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || RandomRepl.String() != "random" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy name wrong")
	}
}

func TestVictimCacheCapturesConflicts(t *testing.T) {
	main := MustNew(Config{Name: "L2", SizeBytes: 1 << 10, BlockBytes: 32, Assoc: 1})
	vc, err := NewVictim(main, 4)
	if err != nil {
		t.Fatalf("NewVictim: %v", err)
	}
	a := mem.PAddr(0)
	b := a + 1<<10 // conflicts with a
	vc.Access(a, false)
	vc.Access(b, false) // evicts a into the victim buffer
	res := vc.Access(a, false)
	if res.Hit {
		t.Fatal("main cache hit unexpectedly")
	}
	if !res.VictimHit {
		t.Error("victim buffer did not capture the conflict victim")
	}
	if vc.Stats().VictimHits != 1 {
		t.Errorf("VictimHits = %d, want 1", vc.Stats().VictimHits)
	}
}

func TestVictimCachePreservesDirtiness(t *testing.T) {
	main := MustNew(Config{Name: "L2", SizeBytes: 1 << 10, BlockBytes: 32, Assoc: 1})
	vc, _ := NewVictim(main, 4)
	a := mem.PAddr(0)
	b := a + 1<<10
	vc.Access(a, true)  // dirty
	vc.Access(b, false) // a -> victim buffer, still dirty
	vc.Access(a, false) // recovered from victim buffer by a read
	// Evict a again; it must still be dirty.
	res := vc.Access(b, false)
	if !res.Evicted {
		t.Fatal("expected eviction")
	}
	// a went back to the victim buffer; force it out by filling the
	// buffer with other conflict victims.
	var wb int
	for i := 2; i < 8; i++ {
		r := vc.Access(mem.PAddr(i)<<10, false)
		if r.EvictedDirty && r.WritebackAddr == a {
			wb++
		}
	}
	if wb != 1 {
		t.Errorf("dirty block written back %d times, want 1", wb)
	}
}

func TestVictimCacheRandomizedAgainstPlain(t *testing.T) {
	// A victim cache must never have more total misses-to-memory than
	// the same main cache alone.
	rng := xrand.New(42)
	plain := MustNew(Config{Name: "p", SizeBytes: 1 << 10, BlockBytes: 32, Assoc: 1})
	main := MustNew(Config{Name: "m", SizeBytes: 1 << 10, BlockBytes: 32, Assoc: 1})
	vc, _ := NewVictim(main, 8)
	var plainMisses, vcMisses uint64
	for i := 0; i < 20000; i++ {
		addr := mem.PAddr(rng.Uintn(8 << 10))
		if !plain.Access(addr, false).Hit {
			plainMisses++
		}
		r := vc.Access(addr, false)
		if !r.Hit && !r.VictimHit {
			vcMisses++
		}
	}
	if vcMisses > plainMisses {
		t.Errorf("victim cache missed more (%d) than plain cache (%d)", vcMisses, plainMisses)
	}
}
