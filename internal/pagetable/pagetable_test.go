package pagetable

import (
	"testing"
	"testing/quick"

	"rampage/internal/mem"
	"rampage/internal/metrics"
	"rampage/internal/policy"
)

func small(t *testing.T, frames uint64) *Inverted {
	t.Helper()
	pt, err := New(Config{Frames: frames, PageBytes: 4096, TableBase: 0xF010_0000})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return pt
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Frames: 0, PageBytes: 4096}).Validate(); err == nil {
		t.Error("zero frames accepted")
	}
	if err := (Config{Frames: 8, PageBytes: 3000}).Validate(); err == nil {
		t.Error("non-power-of-two page accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New with bad config succeeded")
	}
}

func TestAllocMapLookup(t *testing.T) {
	pt := small(t, 8)
	f, ok := pt.AllocFree()
	if !ok {
		t.Fatal("no free frame in fresh table")
	}
	if err := pt.Map(3, 0x42, f); err != nil {
		t.Fatalf("Map: %v", err)
	}
	got, probes, ok := pt.Lookup(3, 0x42)
	if !ok || got != f {
		t.Fatalf("Lookup = (%d, %v), want (%d, true)", got, ok, f)
	}
	if len(probes) < 2 {
		t.Errorf("lookup probed %d addresses, want >= 2 (HAT + entry)", len(probes))
	}
	// The first probe is the hash-anchor slot; later ones are entries.
	if probes[0] < pt.Config().TableBase {
		t.Errorf("probe address %#x below table base", probes[0])
	}
	// Missing translations miss.
	if _, _, ok := pt.Lookup(3, 0x43); ok {
		t.Error("lookup of unmapped vpn hit")
	}
	if _, _, ok := pt.Lookup(4, 0x42); ok {
		t.Error("lookup with wrong pid hit")
	}
}

func TestFreeListExhaustion(t *testing.T) {
	pt := small(t, 4)
	if pt.FreeFrames() != 4 {
		t.Fatalf("FreeFrames = %d, want 4", pt.FreeFrames())
	}
	for i := 0; i < 4; i++ {
		f, ok := pt.AllocFree()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if err := pt.Map(1, uint64(i), f); err != nil {
			t.Fatalf("Map: %v", err)
		}
	}
	if _, ok := pt.AllocFree(); ok {
		t.Error("alloc succeeded on full table")
	}
	if pt.FreeFrames() != 0 {
		t.Errorf("FreeFrames = %d, want 0", pt.FreeFrames())
	}
}

func TestMapErrors(t *testing.T) {
	pt := small(t, 4)
	if err := pt.Map(1, 1, 99); err == nil {
		t.Error("Map to out-of-range frame succeeded")
	}
	f, _ := pt.AllocFree()
	pt.Map(1, 1, f)
	if err := pt.Map(2, 2, f); err == nil {
		t.Error("Map to occupied frame succeeded")
	}
}

func TestUnmapRelease(t *testing.T) {
	pt := small(t, 4)
	f, _ := pt.AllocFree()
	pt.Map(7, 0x99, f)
	pt.SetDirty(f)
	pid, vpn, dirty, err := pt.Unmap(f)
	if err != nil || pid != 7 || vpn != 0x99 || !dirty {
		t.Fatalf("Unmap = (%d, %#x, %v, %v)", pid, vpn, dirty, err)
	}
	if _, _, ok := pt.Lookup(7, 0x99); ok {
		t.Error("unmapped translation still found")
	}
	if _, _, _, err := pt.Unmap(f); err == nil {
		t.Error("double unmap succeeded")
	}
	pt.Release(f)
	if pt.FreeFrames() != 4 {
		t.Errorf("FreeFrames = %d after release, want 4", pt.FreeFrames())
	}
}

func TestChainCollisions(t *testing.T) {
	// With more mappings than HAT buckets... the HAT is sized >= frames,
	// so force collisions by filling every frame and verifying all
	// lookups still succeed (chains must be walked correctly).
	pt := small(t, 64)
	for i := uint64(0); i < 64; i++ {
		f, ok := pt.AllocFree()
		if !ok {
			t.Fatal("alloc failed")
		}
		if err := pt.Map(mem.PID(i%4), i*7919, f); err != nil {
			t.Fatalf("Map %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 64; i++ {
		if _, _, ok := pt.Lookup(mem.PID(i%4), i*7919); !ok {
			t.Fatalf("mapping %d lost", i)
		}
	}
}

func TestUnmapMiddleOfChain(t *testing.T) {
	// Build a guaranteed chain by mapping many VPNs, then unmap one and
	// verify the others survive. With HAT == frames size collisions are
	// rare but possible; force determinism by unmapping every other
	// frame.
	pt := small(t, 32)
	frames := make([]uint64, 32)
	for i := range frames {
		f, _ := pt.AllocFree()
		frames[i] = f
		pt.Map(1, uint64(i)*31, f)
	}
	for i := 0; i < 32; i += 2 {
		if _, _, _, err := pt.Unmap(frames[i]); err != nil {
			t.Fatalf("Unmap %d: %v", i, err)
		}
	}
	for i := 1; i < 32; i += 2 {
		if _, _, ok := pt.Lookup(1, uint64(i)*31); !ok {
			t.Fatalf("survivor mapping %d lost after neighbors unmapped", i)
		}
	}
	for i := 0; i < 32; i += 2 {
		if _, _, ok := pt.Lookup(1, uint64(i)*31); ok {
			t.Fatalf("unmapped mapping %d still found", i)
		}
	}
}

func TestClockSelectBasic(t *testing.T) {
	pt := small(t, 4)
	for i := uint64(0); i < 4; i++ {
		f, _ := pt.AllocFree()
		pt.Map(1, i, f)
	}
	// All use bits set by Map; first ClockSelect clears them all and
	// wraps to pick frame 0.
	victim, scans, ok := pt.ClockSelect(nil)
	if !ok {
		t.Fatal("ClockSelect found no victim")
	}
	if victim != 0 {
		t.Errorf("victim = %d, want 0 (first frame after full sweep)", victim)
	}
	if len(scans) != 5 {
		t.Errorf("clock scanned %d entries, want 5 (4 clears + revisit)", len(scans))
	}
}

func TestClockSecondChance(t *testing.T) {
	pt := small(t, 4)
	for i := uint64(0); i < 4; i++ {
		f, _ := pt.AllocFree()
		pt.Map(1, i, f)
	}
	v1, _, _ := pt.ClockSelect(nil) // clears all, picks 0
	// Re-touch frame 1 only; next select must skip it.
	pt.Touch(1)
	v2, _, ok := pt.ClockSelect(nil)
	if !ok {
		t.Fatal("no victim")
	}
	if v2 == 1 {
		t.Error("clock evicted a recently used frame over unused ones")
	}
	if v1 == v2 {
		// hand advanced past v1, so the same victim twice means the
		// hand did not move.
		t.Error("clock hand did not advance")
	}
}

func TestClockSkipsPinned(t *testing.T) {
	pt := small(t, 4)
	for i := uint64(0); i < 4; i++ {
		f, _ := pt.AllocFree()
		pt.Map(1, i, f)
		if i != 2 {
			pt.Pin(f)
		}
	}
	for trial := 0; trial < 8; trial++ {
		victim, _, ok := pt.ClockSelect(nil)
		if !ok {
			t.Fatal("no victim with one unpinned frame")
		}
		if victim != 2 {
			t.Fatalf("clock picked pinned frame %d", victim)
		}
		pt.Touch(victim)
	}
}

func TestClockAllPinned(t *testing.T) {
	pt := small(t, 2)
	for i := uint64(0); i < 2; i++ {
		f, _ := pt.AllocFree()
		pt.Map(1, i, f)
		pt.Pin(f)
	}
	if _, _, ok := pt.ClockSelect(nil); ok {
		t.Error("ClockSelect returned a pinned victim")
	}
}

func TestFrameInfo(t *testing.T) {
	pt := small(t, 2)
	f, _ := pt.AllocFree()
	pt.Map(5, 0x77, f)
	pt.SetDirty(f)
	pt.Pin(f)
	pid, vpn, valid, dirty, pinned := pt.FrameInfo(f)
	if pid != 5 || vpn != 0x77 || !valid || !dirty || !pinned {
		t.Errorf("FrameInfo = (%d, %#x, %v, %v, %v)", pid, vpn, valid, dirty, pinned)
	}
}

func TestEntryAddressesDisjoint(t *testing.T) {
	pt := small(t, 16)
	seen := map[uint64]bool{}
	for f := uint64(0); f < 16; f++ {
		a := pt.EntryAddr(f)
		if seen[a] {
			t.Fatalf("duplicate entry address %#x", a)
		}
		seen[a] = true
		if a < pt.Config().TableBase || a >= pt.Config().TableBase+pt.TableBytes() {
			t.Fatalf("entry address %#x outside table span", a)
		}
	}
}

func TestTableBytes(t *testing.T) {
	pt := small(t, 1024)
	// 1024 HAT slots * 4 + 1024 entries * 16 = 20KB.
	if got := pt.TableBytes(); got != 1024*4+1024*16 {
		t.Errorf("TableBytes = %d, want %d", got, 1024*4+1024*16)
	}
}

func TestStatsCounting(t *testing.T) {
	pt := small(t, 8)
	f, _ := pt.AllocFree()
	pt.Map(1, 5, f)
	pt.Lookup(1, 5)
	pt.Lookup(1, 6)
	s := pt.Stats()
	if s.Lookups != 2 || s.Hits != 1 || s.Maps != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestMapLookupUnmapProperty(t *testing.T) {
	pt := small(t, 256)
	allocated := map[uint64]struct {
		pid mem.PID
		vpn uint64
	}{}
	f := func(pidRaw uint8, vpn uint32, unmap bool) bool {
		pid := mem.PID(pidRaw % 8)
		if unmap && len(allocated) > 0 {
			for frame, m := range allocated {
				if _, _, _, err := pt.Unmap(frame); err != nil {
					return false
				}
				pt.Release(frame)
				if _, _, ok := pt.Lookup(m.pid, m.vpn); ok {
					return false
				}
				delete(allocated, frame)
				break
			}
			return true
		}
		// Skip duplicate (pid, vpn) mappings.
		for _, m := range allocated {
			if m.pid == pid && m.vpn == uint64(vpn) {
				return true
			}
		}
		frame, ok := pt.AllocFree()
		if !ok {
			return true // table full: acceptable
		}
		if err := pt.Map(pid, uint64(vpn), frame); err != nil {
			return false
		}
		allocated[frame] = struct {
			pid mem.PID
			vpn uint64
		}{pid, uint64(vpn)}
		got, _, ok := pt.Lookup(pid, uint64(vpn))
		return ok && got == frame
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestRecycleReturnsSlabsToArena pins the arena contract: a recycled
// table's slabs back the next same-geometry table, construction in a
// recycle loop stops allocating backing arrays, and a fresh table never
// sees a predecessor's entries.
func TestRecycleReusesSlabs(t *testing.T) {
	cfg := Config{Frames: 64, PageBytes: 4096, TableBase: 0xF010_0000}
	pt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frame, _ := pt.AllocFree()
	if err := pt.Map(3, 77, frame); err != nil {
		t.Fatal(err)
	}
	pt.SetDirty(frame)
	pt.Recycle()
	pt.Recycle() // idempotent

	pt2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := pt2.Lookup(3, 77); ok {
		t.Error("recycled slab leaked a mapping into the next table")
	}
	for i, f := range pt2.DirtyHot() {
		if f != 0 {
			t.Errorf("frame %d: stale flags %#x after recycle", i, f)
		}
	}
	pt2.Recycle()

	// Steady state: with the arena warm, New+Recycle allocates only the
	// table header, never the backing columns (which would be 4+ more).
	allocs := testing.AllocsPerRun(20, func() {
		pt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pt.Recycle()
	})
	if allocs > 2 {
		t.Errorf("New+Recycle allocates %.1f times in steady state; arena is not reusing slabs", allocs)
	}
}

// TestClockScanObservationMatchesCounter pins the scan accounting
// contract: across every replacement policy and every selection
// outcome — immediate hit, use-clearing sweep, all-pinned failure —
// the EvClockSweep histogram sum equals the ClockScans counter
// exactly, because both are fed the same examined-entry count per
// selection.
func TestClockScanObservationMatchesCounter(t *testing.T) {
	for _, pol := range policy.Names() {
		t.Run(pol, func(t *testing.T) {
			pt, err := New(Config{Frames: 8, PageBytes: 4096, TableBase: 0xF010_0000, Policy: pol, PolicySeed: 7})
			if err != nil {
				t.Fatal(err)
			}
			col := metrics.NewCollector(0)
			pt.SetObserver(col)

			check := func(stage string) {
				t.Helper()
				h := col.Hist(metrics.EvClockSweep)
				if h.Sum != pt.Stats().ClockScans {
					t.Fatalf("%s: observed scan sum %d != ClockScans %d", stage, h.Sum, pt.Stats().ClockScans)
				}
			}

			// Map every frame (each arrives used).
			for f := uint64(0); f < 8; f++ {
				if err := pt.Map(1, f, f); err != nil {
					t.Fatal(err)
				}
			}
			// Use-clearing path: all frames start used, so the clock
			// must sweep; ranking policies pick directly.
			if _, _, ok := pt.ClockSelect(nil); !ok {
				t.Fatal("no victim in a fully mapped table")
			}
			check("use-clearing selection")

			// Immediate path: a second selection right away.
			if _, _, ok := pt.ClockSelect(nil); !ok {
				t.Fatal("no victim on second selection")
			}
			check("immediate selection")

			// Failure path: pin everything; the selection must fail but
			// still account every examined entry identically.
			for f := uint64(0); f < 8; f++ {
				pt.Pin(f)
			}
			if _, _, ok := pt.ClockSelect(nil); ok {
				t.Fatal("victim selected from an all-pinned table")
			}
			check("all-pinned failure")

			if pt.Stats().ClockScans == 0 {
				t.Error("selections examined zero entries total")
			}
		})
	}
}
