package pagetable

import (
	"rampage/internal/checkpoint"
	"rampage/internal/mem"
)

// EncodeState serializes the table's complete mutable state: the
// columnar frame entries, hash anchors, free list, replacement-policy
// state and counters. Geometry (frame count, HAT size) is implied by
// the configuration and is validated, not serialized. The clock
// policy's state is exactly the one U64 hand this slot has always
// held, so pre-policy checkpoints stay valid.
func (pt *Inverted) EncodeState(e *checkpoint.Enc) {
	e.Marker(checkpoint.MarkPageTable)
	e.U64s(pt.vpns)
	pids := make([]uint64, len(pt.pids))
	for i, p := range pt.pids {
		pids[i] = uint64(p)
	}
	e.U64s(pids)
	e.U8s(pt.flags)
	e.I32s(pt.next)
	e.I32s(pt.hat)
	e.I32(pt.freeHead)
	e.I32s(pt.freeNext)
	pt.pol.EncodeState(e)
	e.U64(pt.stats.Lookups)
	e.U64(pt.stats.Hits)
	e.U64(pt.stats.Probes)
	e.U64(pt.stats.ClockScans)
	e.U64(pt.stats.Maps)
	e.U64(pt.stats.Unmaps)
}

// DecodeState restores state captured by EncodeState into the live
// columns. Geometry mismatches are decode errors.
func (pt *Inverted) DecodeState(d *checkpoint.Dec) {
	d.Marker(checkpoint.MarkPageTable)
	d.U64sInto(pt.vpns)
	pids := make([]uint64, len(pt.pids))
	d.U64sInto(pids)
	if d.Err() == nil {
		for i, p := range pids {
			pt.pids[i] = mem.PID(p)
		}
	}
	d.U8sInto(pt.flags)
	d.I32sInto(pt.next)
	d.I32sInto(pt.hat)
	pt.freeHead = d.I32()
	d.I32sInto(pt.freeNext)
	pt.pol.DecodeState(d)
	pt.stats.Lookups = d.U64()
	pt.stats.Hits = d.U64()
	pt.stats.Probes = d.U64()
	pt.stats.ClockScans = d.U64()
	pt.stats.Maps = d.U64()
	pt.stats.Unmaps = d.U64()
}
