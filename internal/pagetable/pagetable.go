// Package pagetable implements the inverted page table of §2.2 — a
// table indexed on the physical instead of the virtual address, chosen
// because the SRAM main memory is small, the table size is fixed (so
// the whole table can be pinned in SRAM), and with the table pinned a
// TLB miss need never reference DRAM. The same organization serves the
// DRAM paging device ("same organization as RAMpage main memory, for
// simplicity", §4.3).
//
// The structure is the classic hash-anchor-table design: a hash of
// (process, virtual page number) selects a bucket whose chain links
// frame entries. Lookups report the table addresses they probe so the
// TLB-miss handler trace (package synth) can replay the walk through
// the simulated caches — the probe cost is the paper's "inverted page
// table is slower on lookup than a forward page table".
//
// Replacement uses the standard clock algorithm of §4.5: "a clock hand
// advances through the page table, marking each page that has
// previously been marked as 'in use' as 'unused', until an 'unused'
// page is found."
package pagetable

import (
	"fmt"

	"rampage/internal/mem"
	"rampage/internal/metrics"
	"rampage/internal/xrand"
)

// EntryBytes is the size of one inverted-page-table entry. With
// 32768 frames (a 4 MB SRAM at 128 B pages) the table is 512 KB, which
// together with the hash anchor table reproduces the §4.5 operating-
// system footprint scaling (5336 × 128 B pages at the small end).
const EntryBytes = 16

// HATEntryBytes is the size of one hash-anchor-table slot.
const HATEntryBytes = 4

// Config describes an inverted page table.
type Config struct {
	// Frames is the number of physical page frames mapped.
	Frames uint64
	// PageBytes is the page size (power of two).
	PageBytes uint64
	// TableBase is the virtual address at which the table lives, used
	// to synthesize handler data references. The hash anchor table
	// starts at TableBase; frame entries follow it.
	TableBase uint64
	// Scramble shuffles the initial free list so frames are handed out
	// in pseudo-random order, modeling the page placement of a long-
	// running operating system. Random placement is what produces
	// conflict misses in a physically-indexed direct-mapped cache (the
	// [KH92b]/[BLRC94] problem the paper cites); without it a
	// sequential first-touch allocation gives the baseline an
	// unrealistically conflict-free layout. ScrambleSeed makes the
	// shuffle deterministic.
	Scramble     bool
	ScrambleSeed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Frames == 0 {
		return fmt.Errorf("pagetable: zero frames")
	}
	if c.PageBytes == 0 || !mem.IsPow2(c.PageBytes) {
		return fmt.Errorf("pagetable: page size %d is not a power of two", c.PageBytes)
	}
	return nil
}

// Stats counts page-table events.
type Stats struct {
	Lookups    uint64
	Hits       uint64
	Probes     uint64 // total chain entries examined (collisions show up here)
	ClockScans uint64 // total entries examined by the clock hand
	Maps       uint64
	Unmaps     uint64
}

// entry is one frame's mapping.
type entry struct {
	valid  bool
	pid    mem.PID
	vpn    uint64
	used   bool // clock reference bit
	dirty  bool
	pinned bool
	next   int32 // next frame in hash chain, -1 = end
}

// Inverted is the inverted page table. It is not safe for concurrent
// use.
type Inverted struct {
	cfg      Config
	entries  []entry
	hat      []int32 // bucket -> first frame, -1 = empty
	hatMask  uint64
	freeHead int32
	freeNext []int32 // free-list links
	hand     uint64  // clock hand
	stats    Stats
	obs      metrics.Observer // nil unless probing is attached
}

// New builds an inverted page table with all frames free.
func New(cfg Config) (*Inverted, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Size the hash anchor table to at least the frame count, rounded
	// to a power of two, to keep chains short.
	hatSize := uint64(1)
	for hatSize < cfg.Frames {
		hatSize <<= 1
	}
	pt := &Inverted{
		cfg:      cfg,
		entries:  make([]entry, cfg.Frames),
		hat:      make([]int32, hatSize),
		hatMask:  hatSize - 1,
		freeNext: make([]int32, cfg.Frames),
	}
	for i := range pt.hat {
		pt.hat[i] = -1
	}
	order := make([]int32, cfg.Frames)
	for i := range order {
		order[i] = int32(i)
	}
	if cfg.Scramble {
		// Fisher–Yates, deterministic from the seed. The lowest frames
		// are kept in place so callers can still reserve a contiguous
		// kernel region before user allocation begins; only the tail
		// beyond the first 1/32 of frames is shuffled.
		rng := xrand.New(cfg.ScrambleSeed ^ 0x5C4A3B1E)
		fixed := int(cfg.Frames / 32)
		for i := len(order) - 1; i > fixed; i-- {
			j := fixed + 1 + rng.Intn(i-fixed)
			order[i], order[j] = order[j], order[i]
		}
	}
	pt.freeHead = order[0]
	for i := 0; i < len(order)-1; i++ {
		pt.freeNext[order[i]] = order[i+1]
	}
	pt.freeNext[order[len(order)-1]] = -1
	return pt, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Inverted {
	pt, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return pt
}

// Config returns the table's configuration.
func (pt *Inverted) Config() Config { return pt.cfg }

// Stats returns a copy of the counters.
func (pt *Inverted) Stats() Stats { return pt.stats }

// SetObserver attaches a metrics observer (nil detaches). The observer
// sees walk chain lengths and clock-sweep lengths; it never influences
// table behaviour.
func (pt *Inverted) SetObserver(obs metrics.Observer) { pt.obs = obs }

// TableBytes returns the memory footprint of the table structures
// (hash anchor table plus frame entries) — the part of the §4.5
// operating-system reservation that scales with page size.
func (pt *Inverted) TableBytes() uint64 {
	return uint64(len(pt.hat))*HATEntryBytes + pt.cfg.Frames*EntryBytes
}

// hash maps (pid, vpn) to a bucket.
func (pt *Inverted) hash(pid mem.PID, vpn uint64) uint64 {
	return xrand.Mix(uint64(pid)<<48^vpn) & pt.hatMask
}

// HATAddr returns the virtual address of a bucket slot.
func (pt *Inverted) HATAddr(bucket uint64) uint64 {
	return pt.cfg.TableBase + bucket*HATEntryBytes
}

// EntryAddr returns the virtual address of a frame's table entry.
func (pt *Inverted) EntryAddr(frame uint64) uint64 {
	return pt.cfg.TableBase + uint64(len(pt.hat))*HATEntryBytes + frame*EntryBytes
}

// Lookup finds the frame mapping (pid, vpn). probeAddrs lists the
// table addresses the walk touched — the hash-anchor slot and each
// chain entry examined — for replay as handler data references. The
// walk marks the found frame's use bit (a reference has occurred).
func (pt *Inverted) Lookup(pid mem.PID, vpn uint64) (frame uint64, probeAddrs []uint64, ok bool) {
	return pt.lookup(pid, vpn, nil)
}

// LookupAppend is Lookup with a caller-provided probe buffer to avoid
// per-miss allocation on the simulator's hot path.
func (pt *Inverted) LookupAppend(pid mem.PID, vpn uint64, probes []uint64) (uint64, []uint64, bool) {
	return pt.lookup(pid, vpn, probes)
}

func (pt *Inverted) lookup(pid mem.PID, vpn uint64, probes []uint64) (uint64, []uint64, bool) {
	pt.stats.Lookups++
	bucket := pt.hash(pid, vpn)
	probes = append(probes, pt.HATAddr(bucket))
	var chain uint64
	for idx := pt.hat[bucket]; idx >= 0; idx = pt.entries[idx].next {
		pt.stats.Probes++
		chain++
		probes = append(probes, pt.EntryAddr(uint64(idx)))
		e := &pt.entries[idx]
		if e.valid && e.pid == pid && e.vpn == vpn {
			pt.stats.Hits++
			e.used = true
			if pt.obs != nil {
				pt.obs.Observe(metrics.EvPTProbes, chain)
			}
			return uint64(idx), probes, true
		}
	}
	if pt.obs != nil {
		pt.obs.Observe(metrics.EvPTProbes, chain)
	}
	return 0, probes, false
}

// AllocFree pops a free frame, or reports none.
func (pt *Inverted) AllocFree() (uint64, bool) {
	if pt.freeHead < 0 {
		return 0, false
	}
	f := uint64(pt.freeHead)
	pt.freeHead = pt.freeNext[f]
	return f, true
}

// FreeFrames returns the number of unallocated frames.
func (pt *Inverted) FreeFrames() uint64 {
	var n uint64
	for i := pt.freeHead; i >= 0; i = pt.freeNext[i] {
		n++
	}
	return n
}

// Map installs (pid, vpn) -> frame. The frame must be unmapped (fresh
// from AllocFree or Unmap).
func (pt *Inverted) Map(pid mem.PID, vpn, frame uint64) error {
	if frame >= pt.cfg.Frames {
		return fmt.Errorf("pagetable: frame %d out of range", frame)
	}
	e := &pt.entries[frame]
	if e.valid {
		return fmt.Errorf("pagetable: frame %d already maps (pid %d, vpn %#x)", frame, e.pid, e.vpn)
	}
	bucket := pt.hash(pid, vpn)
	*e = entry{valid: true, pid: pid, vpn: vpn, used: true, next: pt.hat[bucket]}
	pt.hat[bucket] = int32(frame)
	pt.stats.Maps++
	return nil
}

// Unmap removes frame's mapping and returns it. The frame is NOT
// returned to the free list — the caller immediately remaps it (page
// replacement) or calls Release.
func (pt *Inverted) Unmap(frame uint64) (pid mem.PID, vpn uint64, dirty bool, err error) {
	if frame >= pt.cfg.Frames || !pt.entries[frame].valid {
		return 0, 0, false, fmt.Errorf("pagetable: frame %d not mapped", frame)
	}
	e := pt.entries[frame]
	bucket := pt.hash(e.pid, e.vpn)
	// Unlink from the chain.
	if pt.hat[bucket] == int32(frame) {
		pt.hat[bucket] = e.next
	} else {
		for idx := pt.hat[bucket]; idx >= 0; idx = pt.entries[idx].next {
			if pt.entries[idx].next == int32(frame) {
				pt.entries[idx].next = e.next
				break
			}
		}
	}
	pt.entries[frame] = entry{}
	pt.stats.Unmaps++
	return e.pid, e.vpn, e.dirty, nil
}

// Release returns an unmapped frame to the free list.
func (pt *Inverted) Release(frame uint64) {
	pt.freeNext[frame] = pt.freeHead
	pt.freeHead = int32(frame)
}

// Touch sets the frame's clock reference bit.
func (pt *Inverted) Touch(frame uint64) { pt.entries[frame].used = true }

// SetDirty marks the frame's page dirty (it must be written back on
// replacement).
func (pt *Inverted) SetDirty(frame uint64) { pt.entries[frame].dirty = true }

// Pin excludes the frame from clock replacement — the §4.5/§2.3
// mechanism that keeps the page table, handler code and context-switch
// structures resident in SRAM. It is also used transiently to protect
// a frame whose page transfer is still in flight (switch-on-miss).
func (pt *Inverted) Pin(frame uint64) { pt.entries[frame].pinned = true }

// Unpin makes the frame replaceable again (the transfer that pinned it
// has completed).
func (pt *Inverted) Unpin(frame uint64) { pt.entries[frame].pinned = false }

// FrameInfo reports a frame's mapping and state.
func (pt *Inverted) FrameInfo(frame uint64) (pid mem.PID, vpn uint64, valid, dirty, pinned bool) {
	e := pt.entries[frame]
	return e.pid, e.vpn, e.valid, e.dirty, e.pinned
}

// Hand returns the clock hand's current position, for invariant
// checking (the hand must always index a valid frame).
func (pt *Inverted) Hand() uint64 { return pt.hand }

// ClockSelect runs the clock hand to choose a victim frame: it clears
// use bits on referenced pages and stops at the first unreferenced,
// unpinned, valid frame. scanAddrs lists the entry addresses the hand
// examined (each is a read-modify-write in the fault handler trace).
// ok is false when every frame is pinned or recently used twice around
// (pathological; callers treat it as "no victim").
func (pt *Inverted) ClockSelect(scanAddrs []uint64) (victim uint64, _ []uint64, ok bool) {
	n := pt.cfg.Frames
	// Two full sweeps suffice: the first clears use bits, the second
	// must find a clear one unless everything is pinned or invalid.
	for i := uint64(0); i < 2*n; i++ {
		f := pt.hand
		pt.hand = (pt.hand + 1) % n
		e := &pt.entries[f]
		pt.stats.ClockScans++
		scanAddrs = append(scanAddrs, pt.EntryAddr(f))
		if !e.valid || e.pinned {
			continue
		}
		if e.used {
			e.used = false
			continue
		}
		if pt.obs != nil {
			pt.obs.Observe(metrics.EvClockSweep, i+1)
		}
		return f, scanAddrs, true
	}
	if pt.obs != nil {
		pt.obs.Observe(metrics.EvClockSweep, 2*n)
	}
	return 0, scanAddrs, false
}
