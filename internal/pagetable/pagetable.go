// Package pagetable implements the inverted page table of §2.2 — a
// table indexed on the physical instead of the virtual address, chosen
// because the SRAM main memory is small, the table size is fixed (so
// the whole table can be pinned in SRAM), and with the table pinned a
// TLB miss need never reference DRAM. The same organization serves the
// DRAM paging device ("same organization as RAMpage main memory, for
// simplicity", §4.3).
//
// The structure is the classic hash-anchor-table design: a hash of
// (process, virtual page number) selects a bucket whose chain links
// frame entries. Lookups report the table addresses they probe so the
// TLB-miss handler trace (package synth) can replay the walk through
// the simulated caches — the probe cost is the paper's "inverted page
// table is slower on lookup than a forward page table".
//
// Replacement is pluggable (package policy). The default is the
// standard clock algorithm of §4.5: "a clock hand advances through the
// page table, marking each page that has previously been marked as 'in
// use' as 'unused', until an 'unused' page is found." Config.Policy
// selects fifo, random, awrp or bandwidth instead; the table keeps
// owning the per-frame flag bits and reports reference/insert events
// to the policy through its hooks.
//
// Storage is columnar (parallel vpn/pid/flag/link columns) and arena-
// backed: every table's columns are carved from a pair of slabs sized
// by the configuration, and Recycle returns the slabs to a per-size
// pool so the sweep harness, which builds one table per grid cell (and
// the adaptive machine, one per resize epoch), reaches a steady state
// with no per-cell table allocation at all.
package pagetable

import (
	"fmt"
	"sync"

	"rampage/internal/mem"
	"rampage/internal/metrics"
	"rampage/internal/policy"
	"rampage/internal/xrand"
)

// EntryBytes is the size of one inverted-page-table entry. With
// 32768 frames (a 4 MB SRAM at 128 B pages) the table is 512 KB, which
// together with the hash anchor table reproduces the §4.5 operating-
// system footprint scaling (5336 × 128 B pages at the small end).
const EntryBytes = 16

// HATEntryBytes is the size of one hash-anchor-table slot.
const HATEntryBytes = 4

// Config describes an inverted page table.
type Config struct {
	// Frames is the number of physical page frames mapped.
	Frames uint64
	// PageBytes is the page size (power of two).
	PageBytes uint64
	// TableBase is the virtual address at which the table lives, used
	// to synthesize handler data references. The hash anchor table
	// starts at TableBase; frame entries follow it.
	TableBase uint64
	// Scramble shuffles the initial free list so frames are handed out
	// in pseudo-random order, modeling the page placement of a long-
	// running operating system. Random placement is what produces
	// conflict misses in a physically-indexed direct-mapped cache (the
	// [KH92b]/[BLRC94] problem the paper cites); without it a
	// sequential first-touch allocation gives the baseline an
	// unrealistically conflict-free layout. ScrambleSeed makes the
	// shuffle deterministic.
	Scramble     bool
	ScrambleSeed uint64
	// Policy selects the replacement policy ("" or "clock" is the
	// paper's clock algorithm; see package policy for the vocabulary).
	Policy string
	// PolicySeed feeds the seeded policies (random); deterministic
	// policies ignore it.
	PolicySeed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Frames == 0 {
		return fmt.Errorf("pagetable: zero frames")
	}
	if c.PageBytes == 0 || !mem.IsPow2(c.PageBytes) {
		return fmt.Errorf("pagetable: page size %d is not a power of two", c.PageBytes)
	}
	if _, err := policy.Parse(c.Policy); err != nil {
		return err
	}
	return nil
}

// Stats counts page-table events.
type Stats struct {
	Lookups    uint64
	Hits       uint64
	Probes     uint64 // total chain entries examined (collisions show up here)
	ClockScans uint64 // total entries examined by the clock hand
	Maps       uint64
	Unmaps     uint64
}

// Entry flag bits in the flags column (canonical values live in
// package policy, which ranks frames by reading this column).
const (
	flagValid  = policy.FlagValid  // frame maps a page
	flagUsed   = policy.FlagUsed   // clock reference bit
	FlagDirty  = policy.FlagDirty  // page must be written back on replacement
	flagPinned = policy.FlagPinned // excluded from replacement
)

// Inverted is the inverted page table. It is not safe for concurrent
// use. Per-frame state is columnar: vpns, pids, flags, and the hash-
// chain links live in parallel arrays carved from pooled slabs.
type Inverted struct {
	cfg      Config
	vpns     []uint64
	pids     []mem.PID
	flags    []uint8
	next     []int32 // next frame in hash chain, -1 = end
	hat      []int32 // bucket -> first frame, -1 = empty
	hatMask  uint64
	freeHead int32
	freeNext []int32 // free-list links
	pol      policy.ReplacementPolicy
	view     policy.View
	stats    Stats
	obs      metrics.Observer // nil unless probing is attached
	slab     *slab            // backing storage, returned to the arena by Recycle
}

// slab bundles the backing arrays of one table so Recycle can hand
// them back to the arena as a unit.
type slab struct {
	i32  []int32 // hat | next | freeNext
	vpns []uint64
	pids []mem.PID
	u8   []uint8
}

type arenaKey struct{ frames, hatSize uint64 }

// arena pools table slabs by geometry. New draws from it and Recycle
// returns to it, so repeated table construction at the same
// configuration — one per sweep cell, one per adaptive resize —
// allocates only on first use.
var (
	arenaMu sync.Mutex
	arenas  = make(map[arenaKey]*sync.Pool)
)

func arenaFor(k arenaKey) *sync.Pool {
	arenaMu.Lock()
	p, ok := arenas[k]
	if !ok {
		p = &sync.Pool{}
		arenas[k] = p
	}
	arenaMu.Unlock()
	return p
}

// getSlab obtains a zeroed slab of the given geometry, reusing a
// recycled one when available.
func getSlab(frames, hatSize uint64) *slab {
	pool := arenaFor(arenaKey{frames, hatSize})
	s, _ := pool.Get().(*slab)
	if s == nil {
		return &slab{
			i32:  make([]int32, hatSize+2*frames),
			vpns: make([]uint64, frames),
			pids: make([]mem.PID, frames),
			u8:   make([]uint8, frames),
		}
	}
	for i := range s.i32 {
		s.i32[i] = 0
	}
	for i := range s.vpns {
		s.vpns[i] = 0
	}
	for i := range s.pids {
		s.pids[i] = 0
	}
	for i := range s.u8 {
		s.u8[i] = 0
	}
	return s
}

// hatSizeFor rounds the frame count up to a power of two — the hash
// anchor table size that keeps chains short.
func hatSizeFor(frames uint64) uint64 {
	hatSize := uint64(1)
	for hatSize < frames {
		hatSize <<= 1
	}
	return hatSize
}

// New builds an inverted page table with all frames free.
func New(cfg Config) (*Inverted, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hatSize := hatSizeFor(cfg.Frames)
	s := getSlab(cfg.Frames, hatSize)
	pt := &Inverted{
		cfg:      cfg,
		vpns:     s.vpns,
		pids:     s.pids,
		flags:    s.u8,
		hat:      s.i32[:hatSize:hatSize],
		next:     s.i32[hatSize : hatSize+cfg.Frames : hatSize+cfg.Frames],
		freeNext: s.i32[hatSize+cfg.Frames:],
		hatMask:  hatSize - 1,
		slab:     s,
	}
	pol, err := policy.New(cfg.Policy, cfg.Frames, cfg.PolicySeed)
	if err != nil {
		return nil, err
	}
	pt.pol = pol
	pt.view = policy.View{
		Flags:     pt.flags,
		EntryBase: cfg.TableBase + hatSize*HATEntryBytes,
		EntrySize: EntryBytes,
	}
	for i := range pt.hat {
		pt.hat[i] = -1
	}
	// Build the initial free list. The next column is dead until Map
	// links a frame into a chain, so it doubles as the permutation
	// scratch: no separate order array, no extra allocation.
	order := pt.next
	for i := range order {
		order[i] = int32(i)
	}
	if cfg.Scramble {
		// Fisher–Yates, deterministic from the seed. The lowest frames
		// are kept in place so callers can still reserve a contiguous
		// kernel region before user allocation begins; only the tail
		// beyond the first 1/32 of frames is shuffled.
		rng := xrand.New(cfg.ScrambleSeed ^ 0x5C4A3B1E)
		fixed := int(cfg.Frames / 32)
		for i := len(order) - 1; i > fixed; i-- {
			j := fixed + 1 + rng.Intn(i-fixed)
			order[i], order[j] = order[j], order[i]
		}
	}
	pt.freeHead = order[0]
	for i := 0; i < len(order)-1; i++ {
		pt.freeNext[order[i]] = order[i+1]
	}
	pt.freeNext[order[len(order)-1]] = -1
	return pt, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Inverted {
	pt, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return pt
}

// Recycle returns the table's backing slabs to the arena for reuse by
// a future New with the same geometry. The table must not be used
// afterwards — its columns are gone, and any access will panic rather
// than corrupt a successor table. Recycling is optional (an
// un-recycled table is simply garbage collected) and idempotent.
func (pt *Inverted) Recycle() {
	if pt == nil || pt.slab == nil {
		return
	}
	s := pt.slab
	pt.slab = nil
	pt.vpns, pt.pids, pt.flags = nil, nil, nil
	pt.hat, pt.next, pt.freeNext = nil, nil, nil
	arenaFor(arenaKey{pt.cfg.Frames, uint64(cap(s.i32)) - 2*pt.cfg.Frames}).Put(s)
}

// Config returns the table's configuration.
func (pt *Inverted) Config() Config { return pt.cfg }

// Stats returns a copy of the counters.
func (pt *Inverted) Stats() Stats { return pt.stats }

// SetObserver attaches a metrics observer (nil detaches). The observer
// sees walk chain lengths and clock-sweep lengths; it never influences
// table behaviour.
func (pt *Inverted) SetObserver(obs metrics.Observer) { pt.obs = obs }

// DirtyHot exposes the flags column for the simulator's fused TLB→L1
// fast path: a store to a translated address marks its frame dirty
// with Flags[frame] |= FlagDirty, exactly what SetDirty does. The
// slice aliases the live column; it is never reallocated.
func (pt *Inverted) DirtyHot() []uint8 { return pt.flags }

// TableBytes returns the memory footprint of the table structures
// (hash anchor table plus frame entries) — the part of the §4.5
// operating-system reservation that scales with page size.
func (pt *Inverted) TableBytes() uint64 {
	return uint64(len(pt.hat))*HATEntryBytes + pt.cfg.Frames*EntryBytes
}

// hash maps (pid, vpn) to a bucket.
func (pt *Inverted) hash(pid mem.PID, vpn uint64) uint64 {
	return xrand.Mix(uint64(pid)<<48^vpn) & pt.hatMask
}

// HATAddr returns the virtual address of a bucket slot.
func (pt *Inverted) HATAddr(bucket uint64) uint64 {
	return pt.cfg.TableBase + bucket*HATEntryBytes
}

// EntryAddr returns the virtual address of a frame's table entry.
func (pt *Inverted) EntryAddr(frame uint64) uint64 {
	return pt.cfg.TableBase + uint64(len(pt.hat))*HATEntryBytes + frame*EntryBytes
}

// Lookup finds the frame mapping (pid, vpn). probeAddrs lists the
// table addresses the walk touched — the hash-anchor slot and each
// chain entry examined — for replay as handler data references. The
// walk marks the found frame's use bit (a reference has occurred).
func (pt *Inverted) Lookup(pid mem.PID, vpn uint64) (frame uint64, probeAddrs []uint64, ok bool) {
	return pt.lookup(pid, vpn, nil)
}

// LookupAppend is Lookup with a caller-provided probe buffer to avoid
// per-miss allocation on the simulator's hot path.
func (pt *Inverted) LookupAppend(pid mem.PID, vpn uint64, probes []uint64) (uint64, []uint64, bool) {
	return pt.lookup(pid, vpn, probes)
}

func (pt *Inverted) lookup(pid mem.PID, vpn uint64, probes []uint64) (uint64, []uint64, bool) {
	pt.stats.Lookups++
	bucket := pt.hash(pid, vpn)
	probes = append(probes, pt.HATAddr(bucket))
	var chain uint64
	for idx := pt.hat[bucket]; idx >= 0; idx = pt.next[idx] {
		pt.stats.Probes++
		chain++
		probes = append(probes, pt.EntryAddr(uint64(idx)))
		if pt.flags[idx]&flagValid != 0 && pt.pids[idx] == pid && pt.vpns[idx] == vpn {
			pt.stats.Hits++
			pt.flags[idx] |= flagUsed
			pt.pol.Touch(uint64(idx))
			if pt.obs != nil {
				pt.obs.Observe(metrics.EvPTProbes, chain)
			}
			return uint64(idx), probes, true
		}
	}
	if pt.obs != nil {
		pt.obs.Observe(metrics.EvPTProbes, chain)
	}
	return 0, probes, false
}

// AllocFree pops a free frame, or reports none.
func (pt *Inverted) AllocFree() (uint64, bool) {
	if pt.freeHead < 0 {
		return 0, false
	}
	f := uint64(pt.freeHead)
	pt.freeHead = pt.freeNext[f]
	return f, true
}

// FreeFrames returns the number of unallocated frames.
func (pt *Inverted) FreeFrames() uint64 {
	var n uint64
	for i := pt.freeHead; i >= 0; i = pt.freeNext[i] {
		n++
	}
	return n
}

// Map installs (pid, vpn) -> frame. The frame must be unmapped (fresh
// from AllocFree or Unmap).
func (pt *Inverted) Map(pid mem.PID, vpn, frame uint64) error {
	if frame >= pt.cfg.Frames {
		return fmt.Errorf("pagetable: frame %d out of range", frame)
	}
	if pt.flags[frame]&flagValid != 0 {
		return fmt.Errorf("pagetable: frame %d already maps (pid %d, vpn %#x)", frame, pt.pids[frame], pt.vpns[frame])
	}
	bucket := pt.hash(pid, vpn)
	pt.vpns[frame] = vpn
	pt.pids[frame] = pid
	pt.flags[frame] = flagValid | flagUsed
	pt.next[frame] = pt.hat[bucket]
	pt.hat[bucket] = int32(frame)
	pt.stats.Maps++
	return nil
}

// Unmap removes frame's mapping and returns it. The frame is NOT
// returned to the free list — the caller immediately remaps it (page
// replacement) or calls Release.
func (pt *Inverted) Unmap(frame uint64) (pid mem.PID, vpn uint64, dirty bool, err error) {
	if frame >= pt.cfg.Frames || pt.flags[frame]&flagValid == 0 {
		return 0, 0, false, fmt.Errorf("pagetable: frame %d not mapped", frame)
	}
	pid, vpn = pt.pids[frame], pt.vpns[frame]
	dirty = pt.flags[frame]&FlagDirty != 0
	bucket := pt.hash(pid, vpn)
	// Unlink from the chain.
	if pt.hat[bucket] == int32(frame) {
		pt.hat[bucket] = pt.next[frame]
	} else {
		for idx := pt.hat[bucket]; idx >= 0; idx = pt.next[idx] {
			if pt.next[idx] == int32(frame) {
				pt.next[idx] = pt.next[frame]
				break
			}
		}
	}
	pt.vpns[frame] = 0
	pt.pids[frame] = 0
	pt.flags[frame] = 0
	pt.next[frame] = 0
	pt.stats.Unmaps++
	return pid, vpn, dirty, nil
}

// Release returns an unmapped frame to the free list.
func (pt *Inverted) Release(frame uint64) {
	pt.freeNext[frame] = pt.freeHead
	pt.freeHead = int32(frame)
}

// Touch sets the frame's reference bit and reports the reference to
// the replacement policy.
func (pt *Inverted) Touch(frame uint64) {
	pt.flags[frame] |= flagUsed
	pt.pol.Touch(frame)
}

// PolicyInsert reports to the replacement policy that a page fault
// installed a page into frame; refault is true when the page had been
// resident before. Callers invoke it after Map during fault handling
// (the pinned OS mappings built at construction never enter the
// replacement ranking).
func (pt *Inverted) PolicyInsert(frame uint64, refault bool) {
	pt.pol.Insert(frame, refault)
}

// SetDirty marks the frame's page dirty (it must be written back on
// replacement).
func (pt *Inverted) SetDirty(frame uint64) { pt.flags[frame] |= FlagDirty }

// Pin excludes the frame from replacement — the §4.5/§2.3 mechanism
// that keeps the page table, handler code and context-switch
// structures resident in SRAM. It is also used transiently to protect
// a frame whose page transfer is still in flight (switch-on-miss).
func (pt *Inverted) Pin(frame uint64) {
	pt.flags[frame] |= flagPinned
	pt.pol.Pin(frame)
}

// Unpin makes the frame replaceable again (the transfer that pinned it
// has completed).
func (pt *Inverted) Unpin(frame uint64) { pt.flags[frame] &^= flagPinned }

// FrameInfo reports a frame's mapping and state.
func (pt *Inverted) FrameInfo(frame uint64) (pid mem.PID, vpn uint64, valid, dirty, pinned bool) {
	f := pt.flags[frame]
	return pt.pids[frame], pt.vpns[frame], f&flagValid != 0, f&FlagDirty != 0, f&flagPinned != 0
}

// Hand returns the clock hand's current position, for invariant
// checking on clock-policy tables (the hand must always index a valid
// frame). Non-clock policies report zero; use CheckPolicyState for
// the policy-aware invariant.
func (pt *Inverted) Hand() uint64 {
	if c, ok := pt.pol.(clockHand); ok {
		return c.Hand()
	}
	return 0
}

// clockHand is implemented by the clock policy.
type clockHand interface {
	policy.ReplacementPolicy
	Hand() uint64
}

// PolicyName returns the replacement policy's display name.
func (pt *Inverted) PolicyName() string { return policy.Label(pt.pol.Name()) }

// CheckPolicyState validates the replacement policy's internal bounds
// — the policy-aware generalization of the clock-hand invariant.
func (pt *Inverted) CheckPolicyState() error { return pt.pol.CheckState(pt.cfg.Frames) }

// ClockSelect asks the replacement policy for a victim frame: a valid,
// unpinned frame chosen by the configured ranking (for the default
// clock policy, the §4.5 hand sweep that clears use bits as it goes).
// scanAddrs lists the entry addresses the selection examined (each is
// a read-modify-write in the fault handler trace). ok is false when
// every frame is pinned or invalid (pathological; callers treat it as
// "no victim"). The name predates the policy abstraction and is kept
// for the call sites and the paper's vocabulary.
//
// The observer sees one EvClockSweep observation per selection whose
// value is exactly the number of entries examined, so the histogram
// sum always equals the ClockScans counter.
func (pt *Inverted) ClockSelect(scanAddrs []uint64) (victim uint64, _ []uint64, ok bool) {
	before := len(scanAddrs)
	victim, scanAddrs, ok = pt.pol.SelectVictim(pt.view, scanAddrs)
	examined := uint64(len(scanAddrs) - before)
	pt.stats.ClockScans += examined
	if pt.obs != nil {
		pt.obs.Observe(metrics.EvClockSweep, examined)
	}
	if ok {
		policy.CountEviction(pt.pol.Name())
	}
	return victim, scanAddrs, ok
}
