# Build, test and benchmark entry points for the RAMpage simulator.

GO ?= go

.PHONY: all build test vet race bench bench-hot bench-snapshot clean

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The scheduler and sweep machinery are the concurrency-bearing paths.
race:
	$(GO) test -race ./internal/harness/... ./internal/sim/...

# Full artifact benchmark suite (one pass, quick feedback).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Just the simulator hot-loop benchmarks that gate performance work.
bench-hot:
	$(GO) test -bench='Table3|Fig4|Throughput' -benchmem -run='^$$' .

# Machine-readable benchmark snapshot: three repetitions of every
# artifact benchmark, converted to JSON for regression tracking.
bench-snapshot:
	$(GO) test -bench=. -benchmem -run='^$$' -count=3 . \
		| tee /dev/stderr \
		| $(GO) run ./tools/benchjson > BENCH_batch.json

clean:
	$(GO) clean ./...
