# Build, test and benchmark entry points for the RAMpage simulator.

GO ?= go

# Experiments with a JSON form (tables 3-5, figs 2-4) are mirrored
# under testdata/golden/, one <id>.json each.
GOLDEN_DIR := testdata/golden

.PHONY: all build test vet race fleet-test verify verify-long bench bench-hot bench-snapshot bench-check bench-checkpoint profile golden regress clean

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrency-bearing paths: scheduler and sweep machinery, the
# replacement policies (whose eviction counters are process-global
# atomics), plus the experiment service's job queue and HTTP layer
# (-short skips the service's full-scale golden test; the golden CI
# job runs it).
race:
	$(GO) test -race ./internal/policy/ ./internal/harness/... ./internal/sim/... ./internal/regress/ ./internal/metrics/
	$(GO) test -race -short ./internal/server/... ./internal/jobs/... ./internal/fleet/

# The full multi-process fleet gate: in-process unit tests, then a real
# coordinator + two worker processes serving the six golden experiments
# byte-identically (with a disk-store restart), then the chaos run that
# SIGKILLs a worker mid-sweep. Mirrors the CI fleet job; budget ~10 min
# locally (longer under -race).
fleet-test:
	$(GO) test -race -short -count=1 ./internal/fleet/
	$(GO) test -race -count=1 -timeout 50m -run 'TestFleetMultiProcessGolden|TestFleetWorkerKillChaos' -v ./internal/fleet/

# Reference-oracle differential suite: replay seeded traces through
# the slow, obviously-correct oracle models and the production machines
# in lockstep, requiring bit-identical reports (see "Verifying
# correctness" in EXPERIMENTS.md). verify-long raises the traces to
# multiple million references (the scheduled CI job).
verify:
	$(GO) test -race ./internal/oracle/

verify-long:
	$(GO) test ./internal/oracle/ -long -timeout 30m

# Full artifact benchmark suite (one pass, quick feedback).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Just the simulator hot-loop benchmarks that gate performance work.
bench-hot:
	$(GO) test -bench='Table3|Fig4|Throughput' -benchmem -run='^$$' .

# Machine-readable benchmark snapshot: three repetitions of every
# artifact benchmark, converted to JSON for regression tracking.
# Snapshots are named by tag (BENCH_<tag>.json) so each optimization
# round commits its own baseline instead of overwriting history:
# BENCH_batch.json is the pre-columnar batching round, BENCH_hotloop2.json
# the columnar/arena/fused-fast-path round. The raw transcript goes to
# a temp file first so a failed bench run leaves the committed snapshot
# untouched.
BENCH_TAG ?= hotloop2
BENCH_SNAPSHOT := BENCH_$(BENCH_TAG).json
bench-snapshot:
	$(GO) test -bench=. -benchmem -run='^$$' -count=3 . | tee bench_raw.tmp
	$(GO) run ./tools/benchjson < bench_raw.tmp > $(BENCH_SNAPSHOT).tmp
	mv $(BENCH_SNAPSHOT).tmp $(BENCH_SNAPSHOT)
	rm -f bench_raw.tmp

# Compare a fresh hot-loop bench pass against the committed snapshot
# for $(BENCH_TAG) (minimum ns/op per benchmark, 5% regression budget
# by default; CI gates at 10% to ride out shared-runner noise).
BENCH_TOL ?= 0.05
bench-check:
	$(GO) test -bench='Table3|Fig4|Throughput' -benchmem -run='^$$' -count=3 . | tee bench_raw.tmp
	$(GO) run ./tools/benchjson < bench_raw.tmp > bench_got.tmp.json
	rm -f bench_raw.tmp
	$(GO) run ./tools/regress -mode bench -subset -tol $(BENCH_TOL) $(BENCH_SNAPSHOT) bench_got.tmp.json
	rm -f bench_got.tmp.json

# Warm-state checkpoint benchmarks: the cold sweep (simulate + capture)
# against the warm sweep (every cell restored from its final
# checkpoint) plus the half-budget resume. Regenerates the committed
# BENCH_checkpoint.json snapshot, whose cold/warm ratio demonstrates
# the >= 3x warm-sweep speedup this round claims.
bench-checkpoint:
	$(GO) test -bench='Checkpoint' -benchmem -run='^$$' -count=3 . | tee bench_raw.tmp
	$(GO) run ./tools/benchjson < bench_raw.tmp > BENCH_checkpoint.json.tmp
	mv BENCH_checkpoint.json.tmp BENCH_checkpoint.json
	rm -f bench_raw.tmp

# Profile the heaviest hot-loop benchmark (the Table 3 baseline-vs-
# RAMpage sweep) and print the top-10 flat CPU and allocation sites.
# Profiles land under profiles/ for interactive follow-up with
# `go tool pprof -http`.
PROFILE_DIR ?= profiles
profile:
	mkdir -p $(PROFILE_DIR)
	$(GO) test -bench 'Table3BaselineVsRAMpage' -benchmem -run='^$$' -benchtime 3x \
		-cpuprofile $(PROFILE_DIR)/cpu.out -memprofile $(PROFILE_DIR)/mem.out -o $(PROFILE_DIR)/bench.test .
	$(GO) tool pprof -top -nodecount=10 $(PROFILE_DIR)/bench.test $(PROFILE_DIR)/cpu.out
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_space $(PROFILE_DIR)/bench.test $(PROFILE_DIR)/mem.out

# Regenerate the committed golden JSON reports (default scaled
# configuration, seed 42). Only needed when the simulator's behaviour
# changes intentionally; commit the result.
golden:
	$(GO) run ./cmd/rampage-bench -exp all -scale default -format json -outdir $(GOLDEN_DIR)

# Regenerate every golden experiment into a temp dir and diff the
# directories (exact: simulated data is deterministic). The directory
# mode makes a missing file on either side a hard error, so a deleted
# golden or an experiment that stopped rendering cannot slip through.
regress: REGRESS_TMP := $(shell mktemp -d)
regress:
	$(GO) run ./cmd/rampage-bench -exp all -scale default -format json -outdir $(REGRESS_TMP)
	$(GO) run ./tools/regress -mode report $(GOLDEN_DIR) $(REGRESS_TMP)
	rm -rf $(REGRESS_TMP)

clean:
	$(GO) clean ./...
	rm -f bench_raw.tmp bench_got.tmp.json BENCH_*.json.tmp
	rm -rf $(PROFILE_DIR)
